//! Fig. 10 (repo extension): contention management on the Zipf hot-box.
//!
//! Not a figure from the paper — §5's workloads all run under immediate
//! retry. This sweep measures what the `wtf-cm` policies buy on the
//! futures workload they were built for: tasks reading and
//! read-modify-writing a Zipf(θ)-skewed array, so conflict mass
//! concentrates on a few hot slots and wasted executions compound —
//! a doomed future drags its continuation and re-execution with it.
//!
//! Per (backend, clients) cell the report carries one comparison row:
//! `immediate` as the baseline plus one `{cm}_speedup` per policy
//! (committed-work throughput relative to immediate) and the full
//! [`RunResult`] dumps. `wtf-bench-diff` gates the speedups at ±15%, so
//! a policy regression against the checked-in baseline fails CI.
//!
//! Expected shape, asserted below for the contended cells (8 clients ×
//! 4 tasks of parallelism): `hotspot` (per-box abort attribution → a
//! slotted admission gate) and `karma` (priority per aborted work, with
//! aligned repeat-victim windows) both beat immediate retry on
//! throughput *and* waste fewer executions — total aborts drop — on
//! both substrates. Blind `backoff` pays its waits without the
//! attribution; `adaptive` flips WO→SO at submission under storm and
//! usually leads the field.

use wtf_bench::{f3, table_row, FigReport};
use wtf_core::{BackendKind, CmKind, Semantics};
use wtf_workloads::zipf::{zipf_hotbox_spec, ZipfConfig};
use wtf_workloads::{RunResult, RunSpec};

/// The contended Zipf cell: a small array under heavy skew; two hot
/// read-modify-writes per task are enough to make the low ranks collide
/// without fully serializing the run (a fully serialized hot chain
/// leaves a contention manager nothing to win back — immediate retry
/// keeps the commit chain dense, and overlapped wasted attempts are
/// free off the critical path).
fn cfg() -> ZipfConfig {
    ZipfConfig {
        array_size: 64,
        theta: 1.2,
        reads_per_task: 16,
        writes_per_task: 2,
        iter: 200,
        tasks_per_tx: 4,
        txs_per_client: 6,
        seed: 0xc017,
    }
}

const POLICIES: [CmKind; 4] = [
    CmKind::Backoff,
    CmKind::Karma,
    CmKind::Hotspot,
    CmKind::Adaptive,
];

fn run_cell(backend: BackendKind, cm: CmKind, clients: usize) -> RunResult {
    let cfg = cfg();
    let spec = RunSpec {
        units_per_client: (cfg.txs_per_client * cfg.tasks_per_tx) as u64,
        workers: clients * cfg.tasks_per_tx + 2,
        ..RunSpec::new(Semantics::WO_GAC, clients, 1)
    }
    .with_workload("fig10_cm")
    .with_backend(backend)
    .with_cm(cm);
    zipf_hotbox_spec(&cfg, &spec, clients)
}

/// Executions wasted, whoever wasted them: final top-level conflicts
/// plus internal (future/continuation) restarts.
fn total_aborts(r: &RunResult) -> u64 {
    r.tm.top_aborts + r.tm.top_internal_restarts
}

fn main() {
    let mut report = FigReport::begin(
        "fig10_cm",
        "Fig. 10 (extension: contention management, Zipf hot-box)",
        "Fig 10: throughput vs immediate retry + total aborts, by backend × clients",
        &[
            "backend",
            "cm",
            "clients",
            "speedup",
            "total_aborts",
            "makespan",
        ],
    );
    for backend in BackendKind::ALL {
        for clients in [2usize, 4, 8] {
            let imm = run_cell(backend, CmKind::Immediate, clients);
            table_row(&[
                &backend.name(),
                &"immediate",
                &clients,
                &f3(1.0),
                &total_aborts(&imm),
                &imm.makespan,
            ]);
            let runs: Vec<(CmKind, RunResult)> = POLICIES
                .iter()
                .map(|&cm| (cm, run_cell(backend, cm, clients)))
                .collect();
            for (cm, r) in &runs {
                table_row(&[
                    &backend.name(),
                    &cm.name(),
                    &clients,
                    &f3(r.speedup_vs(&imm)),
                    &total_aborts(r),
                    &r.makespan,
                ]);
            }
            // Attribution-driven policies must win the contended cells:
            // more committed work per virtual time *and* fewer wasted
            // executions than immediate retry, on both substrates.
            if clients >= 8 {
                for (cm, r) in &runs {
                    if matches!(cm, CmKind::Karma | CmKind::Hotspot) {
                        assert!(
                            r.speedup_vs(&imm) > 1.0,
                            "{}/{} at {clients} clients: speedup {:.3} <= 1 vs immediate",
                            backend.name(),
                            cm.name(),
                            r.speedup_vs(&imm),
                        );
                        assert!(
                            total_aborts(r) < total_aborts(&imm),
                            "{}/{} at {clients} clients: {} aborts vs immediate's {}",
                            backend.name(),
                            cm.name(),
                            total_aborts(r),
                            total_aborts(&imm),
                        );
                    }
                }
            }
            let systems: Vec<(&str, &RunResult)> =
                runs.iter().map(|(cm, r)| (cm.name(), r)).collect();
            report.comparison_row(
                vec![
                    ("backend", backend.name().into()),
                    ("clients", clients.into()),
                ],
                ("immediate", &imm),
                &systems,
            );
        }
    }
    report.backend_comparison(
        &[("cm", "karma".into()), ("clients", 8usize.into())],
        || {
            // `with_backend` pins the substrate via the env override, so
            // the spec must leave its backend at the from-env default.
            let cfg = cfg();
            let spec = RunSpec {
                units_per_client: (cfg.txs_per_client * cfg.tasks_per_tx) as u64,
                workers: 8 * cfg.tasks_per_tx + 2,
                ..RunSpec::new(Semantics::WO_GAC, 8, 1)
            }
            .with_workload("fig10_cm")
            .with_cm(CmKind::Karma);
            zipf_hotbox_spec(&cfg, &spec, 8)
        },
    );
    report.emit();
}
