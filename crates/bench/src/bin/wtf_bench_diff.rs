//! `wtf-bench-diff` — the perf-regression gate over `results/*.json`.
//!
//! ```text
//! wtf-bench-diff [--check] [--baseline DIR] [--fresh DIR] [FIGURE...]
//! ```
//!
//! Compares freshly generated figure reports (`--fresh`, default the
//! figure binaries' output directory: `WTF_RESULTS_DIR` or `results/`)
//! against checked-in baselines (`--baseline`, default `results/`).
//! With no FIGURE arguments, every `fig*.json` baseline (minus the
//! `fig3_trace_*` event exports) is compared.
//!
//! Exit status: `0` all gated metrics within tolerance; `1` regression
//! or structural mismatch (and, under `--check`, a missing fresh file
//! or an empty comparison set); `2` usage/IO error.
//!
//! Without `--check`, figures missing a fresh file are skipped with a
//! note — convenient for local runs that only regenerated one figure.
//!
//! Under `--check`, every fresh report except the `fig3*` timeline
//! exports is additionally validated with
//! [`check_backend_rows`](wtf_bench::diff::check_backend_rows): the
//! trailing comparative-substrate rows must cover every
//! [`BackendKind`](wtf_core::BackendKind) in order, each labelled and
//! actually run on that substrate.

use std::path::PathBuf;
use std::process::ExitCode;
use wtf_bench::diff::{check_backend_rows, diff_files, discover_figures};
use wtf_bench::results_dir;
use wtf_core::BackendKind;
use wtf_trace::Json;

struct Options {
    check: bool,
    baseline: PathBuf,
    fresh: PathBuf,
    figures: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        baseline: PathBuf::from("results"),
        fresh: results_dir(),
        figures: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--baseline" => {
                opts.baseline = args.next().ok_or("--baseline needs a directory")?.into();
            }
            "--fresh" => {
                opts.fresh = args.next().ok_or("--fresh needs a directory")?.into();
            }
            "--help" | "-h" => {
                return Err(
                    "usage: wtf-bench-diff [--check] [--baseline DIR] [--fresh DIR] \
                            [FIGURE...]"
                        .into(),
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            figure => opts
                .figures
                .push(figure.trim_end_matches(".json").to_string()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let figures = if opts.figures.is_empty() {
        discover_figures(&opts.baseline)
    } else {
        opts.figures.clone()
    };
    if figures.is_empty() {
        eprintln!("no figure baselines found in {}", opts.baseline.display());
        return ExitCode::from(if opts.check { 1 } else { 2 });
    }

    let mut failed = false;
    let mut compared = 0usize;
    for figure in &figures {
        let base_path = opts.baseline.join(format!("{figure}.json"));
        let fresh_path = opts.fresh.join(format!("{figure}.json"));
        if !fresh_path.exists() {
            if opts.check {
                eprintln!("{figure}: FRESH MISSING ({})", fresh_path.display());
                failed = true;
            } else {
                println!(
                    "{figure}: skipped (no fresh file at {})",
                    fresh_path.display()
                );
            }
            continue;
        }
        match diff_files(&base_path, &fresh_path) {
            Ok(d) => {
                compared += 1;
                if d.ok() {
                    println!("{figure}: OK ({} gated metrics)", d.compared);
                } else {
                    failed = true;
                    println!(
                        "{figure}: FAIL ({} regressions, {} structural, {} gated metrics)",
                        d.regressions.len(),
                        d.structural.len(),
                        d.compared
                    );
                    for r in &d.regressions {
                        println!("  regression: {r}");
                    }
                    for s in &d.structural {
                        println!("  structural: {s}");
                    }
                }
            }
            Err(e) => {
                eprintln!("{figure}: {e}");
                return ExitCode::from(2);
            }
        }
        // fig3 emits straggler timelines, not comparison tables; every
        // other figure must end with one comparative row per substrate.
        if opts.check && !figure.starts_with("fig3") {
            match std::fs::read_to_string(&fresh_path)
                .map_err(|e| e.to_string())
                .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()))
            {
                Ok(report) => {
                    let backends: Vec<&str> = BackendKind::ALL.iter().map(|b| b.name()).collect();
                    let problems = check_backend_rows(&report, &backends);
                    if problems.is_empty() {
                        println!("{figure}: backend rows OK ({})", backends.join(","));
                    } else {
                        failed = true;
                        println!("{figure}: FAIL (backend rows malformed)");
                        for p in &problems {
                            println!("  backend-rows: {p}");
                        }
                    }
                }
                Err(e) => {
                    eprintln!("{figure}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    if opts.check && compared == 0 {
        eprintln!("--check: no figures were actually compared");
        failed = true;
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
