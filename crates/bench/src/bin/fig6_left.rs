//! Fig. 6 (left): when does (WO) future-based parallelization pay off?
//!
//! Read-only workload: 2 top-level transactions each parallelized with 16
//! futures, against the throughput of 2 top-level threads without
//! parallelization (non-transactional, i.e. no concurrency control at
//! all). X-axis: transaction length (total reads); series: `iter`
//! (CPU-bound spin between accesses) × {NT futures, WTF futures}.
//!
//! Expected shape (paper §5.1): near-ideal speedups once transactions are
//! long *and* CPU-bound (`iter >= 1000`); a fully memory-bound workload
//! (`iter = 0`) gains nothing because the memory bus is the bottleneck;
//! and WTF tracks the NT futures closely (the WO bookkeeping is not the
//! limiter).

use wtf_bench::{f3, table_row, FigReport};
use wtf_workloads::synthetic::{read_only, read_only_nt, SyntheticConfig};

const CLIENTS: usize = 2;
const FUTURES: usize = 16;

fn cfg(total_reads: usize, iter: u64) -> SyntheticConfig {
    SyntheticConfig {
        array_size: 1 << 14,
        reads_per_task: (total_reads / FUTURES).max(1),
        iter,
        hot_spots: 0,
        writes_per_task: 0,
        blind_writes: false,
        tasks_per_tx: FUTURES,
        txs_per_client: 1,
        seed: 0x6a11,
    }
}

fn main() {
    let mut report = FigReport::begin(
        "fig6_left",
        "Fig. 6 left (read-only speedup of futures)",
        "Fig 6 left: speedup vs 2 non-parallelized NT threads",
        &["tx_length", "iter", "NT-futures", "WTF"],
    );
    let lengths = [10usize, 100, 1_000, 10_000, 100_000];
    let iters = [0u64, 100, 1_000, 10_000, 100_000];
    for &iter in &iters {
        for &len in &lengths {
            let c = cfg(len, iter);
            let baseline = read_only_nt(&c, CLIENTS, false); // 2 threads, sequential
            let nt = read_only_nt(&c, CLIENTS, true); // 2 x 16 NT futures
            let wtf = read_only(&c, CLIENTS); // 2 x 16 WTF futures
            table_row(&[
                &len,
                &iter,
                &f3(nt.speedup_vs(&baseline)),
                &f3(wtf.speedup_vs(&baseline)),
            ]);
            report.comparison_row(
                vec![("tx_length", len.into()), ("iter", iter.into())],
                ("baseline", &baseline),
                &[("nt", &nt), ("wtf", &wtf)],
            );
        }
    }
    report.backend_comparison(
        &[("tx_length", 1_000usize.into()), ("iter", 1_000u64.into())],
        || read_only(&cfg(1_000, 1_000), CLIENTS),
    );
    report.emit();
}
