//! Fig. 6 (right): overhead of WTF-TM with respect to JTF.
//!
//! Conflict-prone workload where WO can neither avoid aborts nor
//! stragglers: each future performs uniform reads over the array followed
//! by hot-spot updates (20 hot spots), `iter = 1k`. A fixed budget of 48
//! threads is split into `tops x futures`; throughput is normalized to 48
//! plain top-level transactions (JVSTM).
//!
//! Expected shape: WTF ≈ JTF across all splits (the graph bookkeeping is
//! cheap), both well above JVSTM; WTF's worst case is the deepest
//! intra-transaction parallelism (2x24) at short lengths — graph
//! synchronization cost, exactly the paper's observation.

use wtf_bench::{f3, table_row, FigReport};
use wtf_core::Semantics;
use wtf_workloads::synthetic::{contended, toplevel_run, SyntheticConfig};

const BUDGET: usize = 48;

fn cfg(reads_per_task: usize, tasks_per_tx: usize, txs_per_client: usize) -> SyntheticConfig {
    SyntheticConfig {
        array_size: 1 << 14,
        reads_per_task,
        iter: 1_000,
        hot_spots: 20,
        writes_per_task: 10,
        blind_writes: false,
        tasks_per_tx,
        txs_per_client,
        seed: 0x6b22,
    }
}

fn main() {
    let mut report = FigReport::begin(
        "fig6_right",
        "Fig. 6 right (WTF vs JTF overhead, 48-thread splits)",
        "Fig 6 right: speedup vs 48 top-level (JVSTM)",
        &["split(tops x futures)", "reads_per_future", "WTF", "JTF"],
    );
    let splits = [(24, 2), (12, 4), (6, 8), (4, 12), (2, 24)];
    let lengths = [10usize, 100, 500, 2_000];
    for &len in &lengths {
        // Baseline: 48 concurrent top-level transactions executing the
        // same transactions without intra-transaction parallelism.
        // Total tasks matched across systems: 96 tasks.
        let base_cfg = cfg(len, 2, 1);
        let baseline = toplevel_run(&base_cfg, BUDGET, true);
        for &(tops, futures) in &splits {
            let txs = (96 / (tops * futures)).max(1);
            let c = cfg(len, futures, txs);
            let wtf = contended(&c, Semantics::WO_GAC, tops);
            let jtf = contended(&c, Semantics::SO, tops);
            table_row(&[
                &format!("{tops}x{futures}"),
                &len,
                &f3(wtf.speedup_vs(&baseline)),
                &f3(jtf.speedup_vs(&baseline)),
            ]);
            report.comparison_row(
                vec![
                    ("tops", tops.into()),
                    ("futures", futures.into()),
                    ("reads_per_future", len.into()),
                ],
                ("baseline", &baseline),
                &[("wtf", &wtf), ("jtf", &jtf)],
            );
        }
    }
    report.backend_comparison(
        &[
            ("tops", 6usize.into()),
            ("futures", 8usize.into()),
            ("reads_per_future", 100usize.into()),
        ],
        || contended(&cfg(100, 8, 2), Semantics::WO_GAC, 6),
    );
    report.emit();
}
