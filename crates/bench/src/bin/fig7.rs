//! Fig. 7: gains of WTF-TM when futures conflict with their continuations.
//!
//! Each future performs its reads then writes hot spots; each continuation
//! reads a random hot spot before spawning the next future. Under SO (JTF)
//! a future's at-submission serialization invalidates the continuation's
//! read (internal abort + rollback); under WO the future simply serializes
//! upon evaluation. JVSTM runs the same tasks as plain top-level
//! transactions.
//!
//! Output: Fig. 7a (speedup vs sequential) and Fig. 7b (top-level abort
//! rate for JVSTM, internal abort rate for JTF/WTF) in one table.
//!
//! Expected shape: WTF's throughput is insensitive to contention; JTF
//! degrades as contention grows (internal aborts); JVSTM is worst (whole
//! long transactions abort).

use wtf_bench::{f3, table_row, FigReport, PAPER_THREADS};
use wtf_core::Semantics;
use wtf_workloads::synthetic::{
    conflict_prone, conflict_prone_sequential, conflict_prone_toplevel, ConflictConfig,
};

/// Total tasks per run, matched across systems and thread counts.
const TOTAL_TASKS: usize = 112;

fn cfg(hot_spots: usize, futures_per_tx: usize, txs_per_client: usize) -> ConflictConfig {
    ConflictConfig {
        array_size: 1 << 14,
        reads_per_future: 200,
        iter: 1_000,
        hot_spots,
        writes_per_future: 10,
        futures_per_tx,
        txs_per_client,
        seed: 0x7a77,
    }
}

fn main() {
    let mut report = FigReport::begin(
        "fig7",
        "Fig. 7 (future-vs-continuation conflicts)",
        "Fig 7a+7b: speedup vs sequential / abort rates",
        &[
            "contention",
            "hot_spots",
            "threads",
            "WTF_speedup",
            "JTF_speedup",
            "JVSTM_speedup",
            "JVSTM_top_abort_rate",
            "JTF_internal_abort_rate",
            "WTF_internal_abort_rate",
        ],
    );
    for (label, hot_spots) in [("high", 100usize), ("medium", 1_000), ("low", 50_000)] {
        // Sequential denominator: all tasks inline in one thread.
        let seq = conflict_prone_sequential(&cfg(hot_spots, 8, TOTAL_TASKS / 8));
        for &threads in &PAPER_THREADS {
            let txs = (TOTAL_TASKS / threads).max(1);
            // WTF / JTF: one client, `threads` concurrent futures per tx.
            let c = cfg(hot_spots, threads, txs);
            let wtf = conflict_prone(&c, Semantics::WO_GAC, 1);
            let jtf = conflict_prone(&c, Semantics::SO, 1);
            // JVSTM: `threads` concurrent clients each executing the same
            // (unparallelized) long transactions.
            let jc = cfg(hot_spots, threads, 1);
            let jvstm = conflict_prone_toplevel(&jc, threads);
            table_row(&[
                &label,
                &hot_spots,
                &threads,
                &f3(wtf.speedup_vs(&seq)),
                &f3(jtf.speedup_vs(&seq)),
                &f3(jvstm.speedup_vs(&seq)),
                &f3(jvstm.top_abort_rate()),
                &f3(jtf.internal_abort_rate()),
                &f3(wtf.internal_abort_rate()),
            ]);
            report.comparison_row(
                vec![
                    ("contention", label.into()),
                    ("hot_spots", hot_spots.into()),
                    ("threads", threads.into()),
                ],
                ("sequential", &seq),
                &[("wtf", &wtf), ("jtf", &jtf), ("jvstm", &jvstm)],
            );
        }
    }
    report.backend_comparison(
        &[
            ("contention", "high".into()),
            ("hot_spots", 100usize.into()),
            ("threads", 8usize.into()),
        ],
        || conflict_prone(&cfg(100, 8, TOTAL_TASKS / 8), Semantics::WO_GAC, 1),
    );
    report.emit();
}
