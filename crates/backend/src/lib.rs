//! # wtf-backend — the STM substrate trait
//!
//! The paper's futures machinery (WO/SO top-levels, §3.4 polygraph
//! acceptance) is defined over an *abstract* STM: a store of versioned
//! boxes with snapshot reads and validate-and-publish commits. This crate
//! extracts that surface from the multi-versioned `wtf-mvstm` into the
//! [`StmBackend`] trait so `wtf-core`, the harness, and the correctness
//! tooling can run over any conforming backend — today `mvstm`
//! (multi-versioned, JVSTM-style) and `tl2` (single-version,
//! lock-striped, lazy-versioning; see `crates/tl2`).
//!
//! The contract every backend must honour, because the offline checker
//! (`wtf-check`) re-derives commit/abort decisions from traces alone:
//!
//! * commit versions are globally unique tickets, so `version -> writer`
//!   is a bijection invertible from [`StmInstall`](wtf_trace::EventKind)
//!   events;
//! * a failed read or commit ([`Err`]) is only ever reported for a box
//!   that really has a version newer than the snapshot — the checker
//!   demands a concrete newer install to justify every abort;
//! * read-only commits serialize at their snapshot and need no
//!   validation;
//! * the same serialization records (`CommitRead` / `TxnCommit` /
//!   `StmInstall`) are emitted by every backend, so the checker and abort
//!   attribution work unchanged.
//!
//! The multi-version/single-version split shows up in exactly one place:
//! [`BackendBox::read_at`] is infallible on `mvstm` (old versions are
//! retained) and fallible on `tl2` (a box overwritten since the snapshot
//! has nothing left to read) — which is why the signature is fallible and
//! callers must treat `Err` as a conflict abort.

use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;
use wtf_cm::ContentionManager;
use wtf_mvstm::raw::{self, BoxBody};
use wtf_mvstm::{
    downcast_value, Aborted, BoxId, FxHashMap, Stm, StmError, StmStatsSnapshot, TxResult, TxValue,
    Value,
};
use wtf_trace::{EventKind, Tracer};

/// Which STM substrate a run executes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Multi-versioned JVSTM-style boxes (`wtf-mvstm`): snapshot reads
    /// never fail, read-only transactions never validate, GC prunes
    /// version chains.
    Mvstm,
    /// Single-version lock-striped TL2 (`wtf-tl2`): per-stripe versioned
    /// lock words, read-version validation, write-back under striped
    /// locks. No version chains, no GC — but reads can conflict.
    Tl2,
}

impl BackendKind {
    /// Every selectable backend, in comparison order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Mvstm, BackendKind::Tl2];

    /// Stable lowercase name (the `WTF_BACKEND` value and the label used
    /// in `results/*.json` rows).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Mvstm => "mvstm",
            BackendKind::Tl2 => "tl2",
        }
    }

    /// Parses a `WTF_BACKEND` value.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "mvstm" => Some(BackendKind::Mvstm),
            "tl2" => Some(BackendKind::Tl2),
            _ => None,
        }
    }

    /// Backend selected by an active [`with_backend`] scope if any, else
    /// the `WTF_BACKEND` environment variable (default: `mvstm`). Panics
    /// on an unknown value — a silently misspelled backend would
    /// invalidate a whole comparative run.
    pub fn from_env() -> BackendKind {
        use std::sync::atomic::Ordering;
        match BACKEND_OVERRIDE.load(Ordering::SeqCst) {
            0 => match std::env::var("WTF_BACKEND") {
                Ok(v) => BackendKind::parse(&v)
                    .unwrap_or_else(|| panic!("WTF_BACKEND={v:?}: expected \"mvstm\" or \"tl2\"")),
                Err(_) => BackendKind::Mvstm,
            },
            i => BackendKind::ALL[i - 1],
        }
    }
}

/// Scoped override consulted by [`BackendKind::from_env`] ahead of
/// `WTF_BACKEND`: `0` = none, else `1 + index into BackendKind::ALL`.
// ordering: seqcst-store / seqcst-load — test-only override knob, set
// under `BACKEND_OVERRIDE_LOCK` and read once per TM construction.
// SeqCst keeps the knob trivially ordered; it is never on a hot path.
static BACKEND_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
/// Serializes [`with_backend`] scopes (overrides must not interleave
/// when tests sweep backends from parallel test threads).
static BACKEND_OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` with every [`BackendKind::from_env`] call in scope pinned to
/// `kind` — so TMs and run specs built inside (which default their
/// substrate from the environment) land on `kind` without mutating
/// process environment variables. Scopes are serialized process-wide;
/// tests and figure binaries use this to sweep workloads across
/// substrates.
pub fn with_backend<T>(kind: BackendKind, f: impl FnOnce() -> T) -> T {
    use std::sync::atomic::Ordering;
    let _guard = BACKEND_OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let idx = BackendKind::ALL.iter().position(|k| *k == kind).unwrap();
    BACKEND_OVERRIDE.store(idx + 1, Ordering::SeqCst);
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            BACKEND_OVERRIDE.store(0, std::sync::atomic::Ordering::SeqCst);
        }
    }
    let _reset = Reset;
    f()
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An untyped transactional box owned by some backend.
///
/// The typed facade is [`TBox`]; the runtime (`wtf-core`) holds
/// `Arc<dyn BackendBox>` in its read/write sets and hands them back to
/// [`StmBackend::commit_attributed`], which downcasts via
/// [`BackendBox::as_any`] to recover its own concrete box type.
pub trait BackendBox: Send + Sync {
    /// This box's id (unique within its backend instance).
    fn id(&self) -> BoxId;

    /// Reads the value visible at `snapshot`, returning
    /// `(observed_version, value)`.
    ///
    /// `Err(Conflict)` means the box's current version is newer than
    /// `snapshot` and the old value is no longer available (single-version
    /// backends). Implementations must never fail spuriously: an `Err`
    /// must always be justified by a real install newer than `snapshot`
    /// on *this* box, because the offline checker verifies exactly that
    /// for every abort the runtime charges.
    fn read_at(&self, snapshot: u64) -> Result<(u64, Value), StmError>;

    /// The latest committed value, outside any transaction (benchmark
    /// inspection; not serializable with respect to anything).
    fn read_latest(&self) -> Value;

    /// Concrete-type escape hatch for the owning backend's commit path.
    fn as_any(&self) -> &dyn Any;
}

/// A begin-snapshot acquired from a backend.
///
/// Multi-versioned backends register the snapshot against GC and release
/// it on drop (the `hold`); single-version backends have nothing to
/// retain and pass `None`.
pub struct BackendSnapshot {
    version: u64,
    _hold: Option<Box<dyn Any + Send + Sync>>,
}

impl BackendSnapshot {
    pub fn new(version: u64, hold: Option<Box<dyn Any + Send + Sync>>) -> BackendSnapshot {
        BackendSnapshot {
            version,
            _hold: hold,
        }
    }

    /// The version this snapshot reads at.
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl std::fmt::Debug for BackendSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BackendSnapshot({})", self.version)
    }
}

/// The abstract STM substrate `wtf-core` layers transactional futures on.
///
/// Mirrors the slice of `wtf-mvstm`'s API the runtime actually consumes:
/// box creation, snapshot acquisition, the attributed validate-and-publish
/// commit, stats and trace hooks. Stats mutation goes through `note_*`
/// hooks because each backend owns its counters privately.
pub trait StmBackend: Send + Sync {
    /// Which substrate this is (selection, labels, reports).
    fn kind(&self) -> BackendKind;

    /// The tracer this backend reports into.
    fn tracer(&self) -> &Arc<Tracer>;

    /// Current published version clock.
    fn clock(&self) -> u64;

    /// Counter snapshot (commits, aborts, ...). Fields a backend has no
    /// analogue for (e.g. `versions_pruned` on a single-version backend)
    /// stay zero.
    fn stats(&self) -> StmStatsSnapshot;

    /// Counts one transaction abort (conflict retry).
    fn note_abort(&self);

    /// Counts one read-only commit. Read-only transactions serialize at
    /// their snapshot with no validation on every backend, so there is no
    /// commit call to count them in.
    fn note_read_only_commit(&self);

    /// Ablation knob: disable background reclamation, where the backend
    /// has any (no-op on single-version backends).
    fn set_gc_enabled(&self, enabled: bool);

    /// The contention manager this backend's retry loops consult — one
    /// shared policy instance per backend, so the generic [`atomic`]
    /// loop, any native loop (mvstm's `Stm::atomic`) and `wtf-core`'s
    /// top-level loop see the same karma ledger / hotspot gates.
    fn cm(&self) -> Arc<dyn ContentionManager>;

    /// Installs a contention manager (the `FutureTm::builder().cm(..)`
    /// plumbing). In-flight retry loops finish on the policy they
    /// started with.
    fn set_cm(&self, cm: Arc<dyn ContentionManager>);

    /// Creates a box initialized to `value`, stamped at the current clock.
    fn new_box(&self, value: Value) -> Arc<dyn BackendBox>;

    /// Begins a snapshot at the current clock.
    fn acquire_snapshot(&self) -> BackendSnapshot;

    /// Validates `reads` against `snapshot` and publishes `writes` at a
    /// freshly reserved version (returned). On a validation failure,
    /// returns the id of the box whose check failed — already charged to
    /// the tracer's conflict-hotspot report — and installs nothing.
    ///
    /// Must emit one `StmInstall` event per written box at `Full` trace
    /// detail; `writes` must be non-empty (read-only commits never reach
    /// the backend).
    fn commit_attributed(
        &self,
        snapshot: u64,
        reads: &[Arc<dyn BackendBox>],
        writes: Vec<(Arc<dyn BackendBox>, Value)>,
    ) -> Result<u64, BoxId>;
}

// ---------------------------------------------------------------------------
// The mvstm adapter.
// ---------------------------------------------------------------------------

/// [`BackendBox`] over an mvstm versioned box.
pub struct MvBox {
    body: Arc<BoxBody>,
}

impl MvBox {
    pub fn new(body: Arc<BoxBody>) -> MvBox {
        MvBox { body }
    }

    /// The underlying mvstm body (the adapter's commit path needs it).
    pub fn body(&self) -> &Arc<BoxBody> {
        &self.body
    }
}

impl BackendBox for MvBox {
    fn id(&self) -> BoxId {
        raw::id_of(&self.body)
    }

    fn read_at(&self, snapshot: u64) -> Result<(u64, Value), StmError> {
        // Multi-versioning: the snapshot's version is always retained
        // while the snapshot is live, so reads cannot fail.
        Ok(raw::read_at(&self.body, snapshot))
    }

    fn read_latest(&self) -> Value {
        raw::read_at(&self.body, u64::MAX).1
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// [`StmBackend`] over the multi-versioned `wtf-mvstm` substrate.
pub struct MvstmBackend {
    stm: Stm,
}

impl MvstmBackend {
    pub fn new(stm: Stm) -> MvstmBackend {
        MvstmBackend { stm }
    }

    pub fn with_tracer(tracer: Arc<Tracer>) -> MvstmBackend {
        MvstmBackend::new(Stm::with_tracer(tracer))
    }

    /// The wrapped STM (explorers and tests that exercise the native
    /// mvstm API go through this).
    pub fn stm(&self) -> &Stm {
        &self.stm
    }
}

fn mv_body(b: &Arc<dyn BackendBox>) -> Arc<BoxBody> {
    b.as_any()
        .downcast_ref::<MvBox>()
        .expect("box from a different backend passed to MvstmBackend")
        .body()
        .clone()
}

impl StmBackend for MvstmBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mvstm
    }

    fn tracer(&self) -> &Arc<Tracer> {
        self.stm.tracer()
    }

    fn clock(&self) -> u64 {
        self.stm.clock()
    }

    fn stats(&self) -> StmStatsSnapshot {
        self.stm.stats()
    }

    fn note_abort(&self) {
        raw::note_abort(&self.stm);
    }

    fn note_read_only_commit(&self) {
        raw::note_read_only_commit(&self.stm);
    }

    fn set_gc_enabled(&self, enabled: bool) {
        self.stm.set_gc_enabled(enabled);
    }

    fn cm(&self) -> Arc<dyn ContentionManager> {
        self.stm.cm()
    }

    fn set_cm(&self, cm: Arc<dyn ContentionManager>) {
        self.stm.set_cm(cm);
    }

    fn new_box(&self, value: Value) -> Arc<dyn BackendBox> {
        Arc::new(MvBox::new(raw::new_box_body(&self.stm, value)))
    }

    fn acquire_snapshot(&self) -> BackendSnapshot {
        let snap = raw::acquire_snapshot(&self.stm);
        BackendSnapshot::new(snap.version(), Some(Box::new(snap)))
    }

    fn commit_attributed(
        &self,
        snapshot: u64,
        reads: &[Arc<dyn BackendBox>],
        writes: Vec<(Arc<dyn BackendBox>, Value)>,
    ) -> Result<u64, BoxId> {
        let read_bodies: Vec<Arc<BoxBody>> = reads.iter().map(mv_body).collect();
        let writes: Vec<(Arc<BoxBody>, Value)> =
            writes.into_iter().map(|(b, v)| (mv_body(&b), v)).collect();
        raw::commit_attributed(&self.stm, snapshot, read_bodies.iter(), writes)
    }
}

// ---------------------------------------------------------------------------
// The typed box facade.
// ---------------------------------------------------------------------------

/// The typed, clonable handle over a backend box — the backend-agnostic
/// analogue of `wtf_mvstm::VBox` (and re-exported as `VBox` by
/// `wtf-core`).
pub struct TBox<T> {
    body: Arc<dyn BackendBox>,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for TBox<T> {
    fn clone(&self) -> Self {
        TBox {
            body: self.body.clone(),
            _marker: PhantomData,
        }
    }
}

impl<T: TxValue> TBox<T> {
    /// Creates a box initialized to `value` on `backend`.
    pub fn new_on(backend: &dyn StmBackend, value: T) -> TBox<T> {
        TBox::from_body(backend.new_box(Arc::new(value)))
    }

    /// Wraps an untyped body. The caller asserts the stored type is `T`
    /// (reads panic on mismatch, exactly like `VBox`).
    pub fn from_body(body: Arc<dyn BackendBox>) -> TBox<T> {
        TBox {
            body,
            _marker: PhantomData,
        }
    }

    /// This box's id.
    pub fn id(&self) -> BoxId {
        self.body.id()
    }

    /// The untyped body (runtime internals).
    pub fn body(&self) -> &Arc<dyn BackendBox> {
        &self.body
    }

    /// Reads the latest committed value, outside any transaction.
    pub fn read_latest(&self) -> T {
        downcast_value(&self.body.read_latest())
    }
}

impl<T> std::fmt::Debug for TBox<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TBox({:?})", self.body.id())
    }
}

// ---------------------------------------------------------------------------
// The stepwise transaction (explorers, differential tests, plain atomics).
// ---------------------------------------------------------------------------

/// An in-flight backend transaction, mirroring `wtf_mvstm::Txn` but
/// generic over the substrate. Driven stepwise by `wtf-check`'s schedule
/// explorers and wrapped by [`atomic`] for retry-until-commit use.
///
/// Unlike the mvstm-native `Txn`, [`BackendTxn::read`] is fallible: on a
/// single-version backend a read of a box overwritten since the snapshot
/// returns `Err(Conflict)`, which callers must treat as an abort of the
/// whole transaction (its snapshot is no longer readable).
pub struct BackendTxn<'s> {
    backend: &'s dyn StmBackend,
    snapshot: BackendSnapshot,
    /// Box plus the version the first read observed — captured at read
    /// time because that is what the commit-time serialization record
    /// re-emits (see `wtf_mvstm::Txn` for the GC argument).
    read_set: FxHashMap<BoxId, (Arc<dyn BackendBox>, u64)>,
    write_set: FxHashMap<BoxId, (Arc<dyn BackendBox>, Value)>,
    /// The box a failed read was charged to (single-version backends),
    /// kept so [`atomic`] can attribute the abort to its contention
    /// manager even though the `Err(Conflict)` itself carries no id.
    conflict_box: Option<BoxId>,
}

impl<'s> BackendTxn<'s> {
    pub fn begin(backend: &'s dyn StmBackend) -> BackendTxn<'s> {
        BackendTxn {
            snapshot: backend.acquire_snapshot(),
            backend,
            read_set: FxHashMap::default(),
            write_set: FxHashMap::default(),
            conflict_box: None,
        }
    }

    /// The snapshot version this transaction reads at.
    pub fn snapshot_version(&self) -> u64 {
        self.snapshot.version()
    }

    /// Transactional read. Sees the transaction's own writes, else the
    /// begin snapshot. `Err(Conflict)` (single-version backends only)
    /// means this transaction can no longer commit — abort it.
    pub fn read<T: TxValue>(&mut self, tbox: &TBox<T>) -> TxResult<T> {
        let id = tbox.id();
        if let Some((_, v)) = self.write_set.get(&id) {
            return Ok(downcast_value(v));
        }
        let (version, value) = match tbox.body().read_at(self.snapshot.version()) {
            Ok(read) => read,
            Err(e) => {
                self.conflict_box = Some(id);
                return Err(e);
            }
        };
        self.backend
            .tracer()
            .record_full(EventKind::StmRead, id.0, version);
        self.read_set
            .entry(id)
            .or_insert_with(|| (tbox.body().clone(), version));
        Ok(downcast_value(&value))
    }

    /// Transactional write: buffered privately until commit.
    pub fn write<T: TxValue>(&mut self, tbox: &TBox<T>, value: T) -> TxResult<()> {
        self.write_set
            .insert(tbox.id(), (tbox.body().clone(), Arc::new(value)));
        Ok(())
    }

    /// Explicitly aborts: [`atomic`] will *not* retry.
    pub fn abort<T>(&mut self) -> TxResult<T> {
        Err(StmError::UserAbort)
    }

    /// The box a failed [`BackendTxn::read`] charged this transaction's
    /// conflict to, if any (the contention manager's attribution input).
    pub fn conflict_box(&self) -> Option<BoxId> {
        self.conflict_box
    }

    /// Validates and publishes. A `Conflict` outside [`atomic`]'s retry
    /// loop (i.e. from the schedule explorers) is a final abort.
    pub fn commit(self) -> Result<(), StmError> {
        self.commit_with_attribution()
            .map_err(|_| StmError::Conflict)
    }

    /// Like [`BackendTxn::commit`], but a validation failure names the
    /// box whose check failed — what [`atomic`] feeds the contention
    /// manager. Read-only commits cannot conflict.
    pub fn commit_with_attribution(self) -> Result<(), BoxId> {
        let backend = self.backend;
        let snapshot = self.snapshot.version();
        if self.write_set.is_empty() {
            // Read-only: every read was validated against the snapshot
            // (mvstm by multi-versioning, tl2 per-read), so the
            // transaction serializes at its snapshot with no commit call.
            backend.note_read_only_commit();
            Self::record_commit(backend, &self.read_set, snapshot, snapshot);
            return Ok(());
        }
        let reads: Vec<Arc<dyn BackendBox>> =
            self.read_set.values().map(|(b, _)| b.clone()).collect();
        let writes: Vec<(Arc<dyn BackendBox>, Value)> = self.write_set.into_values().collect();
        let version = backend.commit_attributed(snapshot, &reads, writes)?;
        Self::record_commit(backend, &self.read_set, version, snapshot);
        Ok(())
    }

    /// The commit-time serialization record: sorted `CommitRead`s followed
    /// by the `TxnCommit` marker, contiguous on the committing thread's
    /// lane (the shape `wtf-check` inverts).
    fn record_commit(
        backend: &dyn StmBackend,
        read_set: &FxHashMap<BoxId, (Arc<dyn BackendBox>, u64)>,
        version: u64,
        snapshot: u64,
    ) {
        let tracer = backend.tracer();
        let mut reads: Vec<(BoxId, u64)> = read_set
            .iter()
            .map(|(id, (_, observed))| (*id, *observed))
            .collect();
        reads.sort_unstable();
        for (id, observed) in reads {
            tracer.record_full(EventKind::CommitRead, id.0, observed);
        }
        tracer.record_full(EventKind::TxnCommit, version, snapshot);
    }
}

/// Runs `f` as a transaction on `backend`, retrying on conflicts until it
/// commits — the backend-generic analogue of `Stm::atomic`. Every
/// conflict abort is attributed (the failed read's box on single-version
/// backends, the failed validation's box at commit) and reported to the
/// backend's [contention manager](StmBackend::cm), whose wait is applied
/// before the retry.
pub fn atomic<T>(
    backend: &dyn StmBackend,
    mut f: impl FnMut(&mut BackendTxn) -> TxResult<T>,
) -> Result<T, Aborted> {
    let cm = backend.cm();
    let actor = cm.begin_txn();
    wtf_cm::pause_at_begin(&*cm, backend.tracer(), actor);
    let mut streak = 0u32;
    loop {
        let attempt_start = wtf_cm::attempt_now();
        let mut txn = BackendTxn::begin(backend);
        let conflict_box = match f(&mut txn) {
            Ok(value) => match txn.commit_with_attribution() {
                Ok(()) => {
                    cm.on_commit(actor);
                    return Ok(value);
                }
                Err(box_id) => Some(box_id),
            },
            Err(StmError::Conflict) => txn.conflict_box(),
            Err(StmError::UserAbort) => return Err(Aborted),
        };
        backend.note_abort();
        streak += 1;
        wtf_cm::pause_after_abort(
            &*cm,
            backend.tracer(),
            actor,
            conflict_box.map(|b| b.0),
            streak,
            attempt_start,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parses_env_values() {
        assert_eq!(BackendKind::parse("mvstm"), Some(BackendKind::Mvstm));
        assert_eq!(BackendKind::parse("TL2"), Some(BackendKind::Tl2));
        assert_eq!(BackendKind::parse(""), Some(BackendKind::Mvstm));
        assert_eq!(BackendKind::parse("nope"), None);
        assert_eq!(BackendKind::Tl2.name(), "tl2");
    }

    #[test]
    fn mvstm_adapter_round_trips() {
        let backend = MvstmBackend::with_tracer(Tracer::disabled());
        let b: TBox<i64> = TBox::new_on(&backend, 5);
        assert_eq!(b.read_latest(), 5);
        let b2 = b.clone();
        let seen = atomic(&backend, move |tx| {
            let v = tx.read(&b2)?;
            tx.write(&b2, v + 1)?;
            Ok(v)
        })
        .unwrap();
        assert_eq!(seen, 5);
        assert_eq!(b.read_latest(), 6);
        let stats = backend.stats();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.read_only_commits, 0);
    }

    #[test]
    fn read_only_commit_counts() {
        let backend = MvstmBackend::with_tracer(Tracer::disabled());
        let b: TBox<u64> = TBox::new_on(&backend, 3);
        let b2 = b.clone();
        let v = atomic(&backend, move |tx| tx.read(&b2)).unwrap();
        assert_eq!(v, 3);
        let stats = backend.stats();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.read_only_commits, 1);
    }
}
