//! # wtf-profile — causal critical-path profiler
//!
//! `wtf-trace` records what happened; `wtf-telemetry` reports rates. This
//! crate answers *why a run took as long as it did*: it rebuilds the
//! causal dependency structure of a run from its trace streams (future
//! spawn/join edges, retry lineage, taskpool queue edges, commit-pipeline
//! spans), walks the critical path through that structure under the
//! virtual clock, and attributes every unit of time to a closed category
//! set — useful committed work, wasted aborted work, publish-wait, queue
//! delay, validation, commit-lock stall, join-wait, idle.
//!
//! The critical-path segments tile `[0, makespan)` *exactly*: category
//! totals partition the makespan by construction, which is the invariant
//! CI gates on. The same attribution machinery feeds a flamegraph
//! folded-stacks export (`flamegraph.pl`/speedscope-ready) and the
//! "what if aborts were free" speedup bound.
//!
//! Like `wtf-check`, the profiler hard-fails on truncated traces
//! (`dropped > 0`): a profile over a partial history would silently
//! misattribute the missing time.

mod dag;
mod folded;
mod path;

pub use path::{Category, Segment, ALL_CATEGORIES};

use std::collections::BTreeMap;
use std::fmt;
use wtf_trace::{Json, TraceEvent, Tracer};

/// Profile construction failure (truncated or malformed input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileError(pub String);

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProfileError {}

/// A fully analyzed run: causal model + critical path.
pub struct Profile {
    model: dag::Model,
    cp: Vec<Segment>,
}

impl fmt::Debug for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Profile")
            .field("makespan", &self.makespan())
            .field("segments", &self.cp.len())
            .finish()
    }
}

impl Profile {
    /// Profiles harvested lanes. `dropped > 0` is a hard failure, exactly
    /// as in `wtf-check`: attribution over a truncated history would be
    /// vacuously wrong.
    pub fn from_lanes(
        lanes: Vec<(usize, Vec<TraceEvent>)>,
        dropped: u64,
    ) -> Result<Profile, ProfileError> {
        Profile::from_lanes_with_makespan(lanes, dropped, None)
    }

    /// Like [`Profile::from_lanes`], extending the analysis horizon to a
    /// caller-supplied makespan (the tail past the last event is idle).
    pub fn from_lanes_with_makespan(
        lanes: Vec<(usize, Vec<TraceEvent>)>,
        dropped: u64,
        makespan: Option<u64>,
    ) -> Result<Profile, ProfileError> {
        if dropped > 0 {
            return Err(ProfileError(format!(
                "trace truncated: {dropped} events dropped by full lanes — attribution \
                 would be vacuous; raise the lane capacity or lower the trace level"
            )));
        }
        let model = dag::build(&lanes, makespan);
        let cp = path::critical_path(&model);
        Ok(Profile { model, cp })
    }

    /// Profiles a live tracer's harvested lanes. Call after the run has
    /// quiesced (workers joined).
    pub fn from_tracer(tracer: &Tracer) -> Result<Profile, ProfileError> {
        Profile::from_lanes(tracer.lanes(), tracer.events_dropped())
    }

    /// Like [`Profile::from_tracer`] with an explicit makespan horizon.
    pub fn from_tracer_with_makespan(
        tracer: &Tracer,
        makespan: u64,
    ) -> Result<Profile, ProfileError> {
        Profile::from_lanes_with_makespan(tracer.lanes(), tracer.events_dropped(), Some(makespan))
    }

    /// Profiles an exported Chrome trace (`results/fig3_trace_*.json`).
    /// The export format carries no drop counter, so truncation can only
    /// be detected structurally.
    pub fn from_chrome_json(json: &Json) -> Result<Profile, ProfileError> {
        let lanes = wtf_trace::chrome::parse_chrome_trace(json).map_err(ProfileError)?;
        Profile::from_lanes(lanes, 0)
    }

    /// The horizon the profile partitions (caller makespan or trace end).
    pub fn makespan(&self) -> u64 {
        self.model.horizon
    }

    /// Critical-path segments, ascending by start, tiling `[0, makespan)`.
    pub fn critical_path(&self) -> &[Segment] {
        &self.cp
    }

    /// Per-category totals over the critical path. Sums to the makespan.
    pub fn path_categories(&self) -> BTreeMap<Category, u64> {
        let mut out: BTreeMap<Category, u64> = ALL_CATEGORIES.iter().map(|&c| (c, 0)).collect();
        for seg in &self.cp {
            *out.entry(seg.category).or_insert(0) += seg.dur();
        }
        out
    }

    /// Per-category aggregate *lane-time* totals: every lane's timeline
    /// tiled over `[0, makespan)` plus the measured queue delays. Sums to
    /// at least the makespan (lanes × makespan + queue delay).
    pub fn lane_totals(&self) -> BTreeMap<Category, u64> {
        let mut out: BTreeMap<Category, u64> = ALL_CATEGORIES.iter().map(|&c| (c, 0)).collect();
        for lane in &self.model.lanes {
            for seg in path::lane_tiling(&self.model, lane) {
                *out.entry(seg.category).or_insert(0) += seg.dur();
            }
            for &(_, _, delay) in &lane.dequeues {
                *out.entry(Category::QueueDelay).or_insert(0) += delay;
            }
        }
        out
    }

    /// Checks the partition invariant: critical-path category totals must
    /// sum exactly to the makespan (CI gates on this).
    pub fn verify_partition(&self) -> Result<(), ProfileError> {
        let sum: u64 = self.path_categories().values().sum();
        if sum == self.makespan() {
            Ok(())
        } else {
            Err(ProfileError(format!(
                "critical-path categories sum to {sum}, expected makespan {}",
                self.makespan()
            )))
        }
    }

    /// "What if aborts were free": makespan over makespan minus the
    /// wasted time on the critical path. `None` when the entire path is
    /// waste (the bound diverges).
    pub fn speedup_bound(&self) -> Option<f64> {
        let makespan = self.makespan();
        if makespan == 0 {
            return Some(1.0);
        }
        let wasted = *self.path_categories().get(&Category::Wasted).unwrap_or(&0);
        if wasted >= makespan {
            None
        } else {
            Some(makespan as f64 / (makespan - wasted) as f64)
        }
    }

    /// Path time aggregated per culprit entity (future, top, box),
    /// descending — the "who is to blame" list; the heaviest entry of a
    /// straggler run is the straggler.
    pub fn culprits(&self) -> Vec<(&'static str, u64, u64)> {
        let mut agg: BTreeMap<(&'static str, u64), u64> = BTreeMap::new();
        for seg in &self.cp {
            if seg.category == Category::Idle {
                continue;
            }
            if let Some(f) = seg.future {
                *agg.entry(("future", f)).or_insert(0) += seg.dur();
            } else if let Some(t) = seg.top {
                *agg.entry(("top", t)).or_insert(0) += seg.dur();
            }
            if let Some(b) = seg.box_id {
                *agg.entry(("box", b)).or_insert(0) += seg.dur();
            }
        }
        let mut out: Vec<(&'static str, u64, u64)> =
            agg.into_iter().map(|((k, id), t)| (k, id, t)).collect();
        out.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)).then(a.1.cmp(&b.1)));
        out
    }

    /// The `CriticalPathReport` JSON block: per-category totals, top-k
    /// path segments with culprits, speedup bound, culprit ranking.
    /// Byte-deterministic under the virtual clock.
    pub fn report(&self, top_k: usize) -> Json {
        let cats = self.path_categories();
        let categories = Json::Obj(
            ALL_CATEGORIES
                .iter()
                .map(|&c| (c.name().to_string(), Json::U64(*cats.get(&c).unwrap_or(&0))))
                .collect(),
        );
        let mut ranked: Vec<&Segment> = self.cp.iter().collect();
        ranked.sort_by(|a, b| b.dur().cmp(&a.dur()).then(a.start.cmp(&b.start)));
        let opt = |v: Option<u64>| v.map(Json::U64).unwrap_or(Json::Null);
        let segments = Json::Arr(
            ranked
                .into_iter()
                .take(top_k)
                .map(|s| {
                    Json::obj(vec![
                        ("lane", (s.lane as u64).into()),
                        ("start", s.start.into()),
                        ("end", s.end.into()),
                        ("dur", s.dur().into()),
                        ("category", s.category.name().into()),
                        ("top", opt(s.top)),
                        ("future", opt(s.future)),
                        ("attempt", opt(s.attempt)),
                        ("box", opt(s.box_id)),
                    ])
                })
                .collect(),
        );
        let totals = self.lane_totals();
        let totals_json = Json::Obj(
            ALL_CATEGORIES
                .iter()
                .map(|&c| {
                    (
                        c.name().to_string(),
                        Json::U64(*totals.get(&c).unwrap_or(&0)),
                    )
                })
                .collect(),
        );
        let culprits = Json::Arr(
            self.culprits()
                .into_iter()
                .take(top_k)
                .map(|(kind, id, t)| {
                    Json::obj(vec![
                        ("kind", kind.into()),
                        ("id", id.into()),
                        ("path_time", t.into()),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("schema", "wtf-profile/v1".into()),
            ("makespan", self.makespan().into()),
            ("lanes", (self.model.lanes.len() as u64).into()),
            ("events", self.model.events.into()),
            (
                "critical_path",
                Json::obj(vec![
                    (
                        "length",
                        Json::U64(self.path_categories().values().sum::<u64>()),
                    ),
                    ("categories", categories),
                    ("segments", segments),
                ]),
            ),
            ("totals", totals_json),
            (
                "counts",
                Json::obj(vec![
                    ("top_retries", self.model.top_retries.into()),
                    ("txn_attempt_aborts", self.model.txn_attempt_aborts.into()),
                ]),
            ),
            (
                "speedup_bound",
                match self.speedup_bound() {
                    Some(v) => Json::F64(v),
                    None => Json::Null,
                },
            ),
            ("culprits", culprits),
        ])
    }

    /// Flamegraph folded-stacks export (see [`crate::folded`]).
    pub fn folded_stacks(&self) -> String {
        folded::folded_stacks(&self.model)
    }
}

#[cfg(test)]
mod tests;
