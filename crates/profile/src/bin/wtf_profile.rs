//! `wtf-profile` — causal critical-path profiler CLI.
//!
//! ```text
//! wtf-profile [--check] [--top N] [--folded DIR] [--makespan N] FILE...
//! ```
//!
//! Each FILE is a Chrome-format trace export produced by the figure
//! binaries under `WTF_TRACE` (e.g. `results/fig3_trace_wo_lac.json`).
//! For every file the tool prints the `CriticalPathReport` JSON block on
//! stdout (one per line, preceded by a `== FILE` marker when more than
//! one file is given).
//!
//! Flags:
//!
//! * `--check` — additionally verify the partition invariant (critical-
//!   path category totals must sum exactly to the makespan) and fail the
//!   run if it does not hold;
//! * `--top N` — number of path segments/culprits in the report
//!   (default 10);
//! * `--folded DIR` — also write flamegraph folded stacks to
//!   `DIR/<stem>.folded` (render with `flamegraph.pl` or speedscope);
//! * `--makespan N` — extend the analysis horizon to N clock units (the
//!   tail past the last event is attributed to idle).
//!
//! Exit status: `0` success; `1` a file failed to parse/profile or
//! failed the `--check` gate; `2` usage error.

use std::path::PathBuf;
use std::process::ExitCode;
use wtf_profile::Profile;
use wtf_trace::Json;

struct Options {
    check: bool,
    top: usize,
    folded: Option<PathBuf>,
    makespan: Option<u64>,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        top: 10,
        folded: None,
        makespan: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--top" => {
                let v = args.next().ok_or("--top needs a number")?;
                opts.top = v.parse().map_err(|_| format!("bad --top value: {v}"))?;
            }
            "--folded" => {
                opts.folded = Some(args.next().ok_or("--folded needs a directory")?.into());
            }
            "--makespan" => {
                let v = args.next().ok_or("--makespan needs a number")?;
                opts.makespan = Some(
                    v.parse()
                        .map_err(|_| format!("bad --makespan value: {v}"))?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: wtf-profile [--check] [--top N] [--folded DIR] [--makespan N] FILE..."
                        .to_string(),
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}"));
            }
            file => opts.files.push(file.into()),
        }
    }
    if opts.files.is_empty() {
        return Err(
            "no trace files given (expected Chrome exports, e.g. results/fig3_trace_wo_lac.json)"
                .to_string(),
        );
    }
    Ok(opts)
}

fn run_file(opts: &Options, file: &PathBuf) -> Result<(), String> {
    let raw = std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
    let json = Json::parse(&raw).map_err(|e| format!("{}: {e}", file.display()))?;
    let lanes = wtf_trace::chrome::parse_chrome_trace(&json)
        .map_err(|e| format!("{}: {e}", file.display()))?;
    let profile = Profile::from_lanes_with_makespan(lanes, 0, opts.makespan)
        .map_err(|e| format!("{}: {e}", file.display()))?;
    if opts.check {
        profile
            .verify_partition()
            .map_err(|e| format!("{}: {e}", file.display()))?;
    }
    if opts.files.len() > 1 {
        println!("== {}", file.display());
    }
    println!("{}", profile.report(opts.top));
    if let Some(dir) = &opts.folded {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let stem = file
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("profile");
        let out = dir.join(format!("{stem}.folded"));
        std::fs::write(&out, profile.folded_stacks())
            .map_err(|e| format!("{}: {e}", out.display()))?;
        eprintln!("wtf-profile: wrote {}", out.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("wtf-profile: {msg}");
            return ExitCode::from(2);
        }
    };
    let mut failed = false;
    for file in &opts.files {
        if let Err(msg) = run_file(&opts, file) {
            eprintln!("wtf-profile: {msg}");
            failed = true;
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
