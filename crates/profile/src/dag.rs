//! Causal model reconstruction: from raw per-lane event streams to a
//! queryable dependency structure — per-lane phase timelines (innermost
//! active span wins), attempt/top-level outcome windows, taskpool
//! enqueue→dequeue pairs and future-completion join targets.

use std::collections::BTreeMap;
use wtf_trace::{EventKind, TraceEvent};

/// Innermost runtime phase a lane can be in, by span nesting. Priority
/// resolves same-instant overlap: validation and publish-wait happen
/// inside a commit span, a commit inside a busy span, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Phase {
    /// WorkerIdleSpan: parked waiting for work.
    IdleSpan,
    /// WorkerBusySpan: executing a task (category refined by windows).
    Busy,
    /// EvalWaitSpan: blocked on a future (a join edge).
    EvalWait,
    /// StmCommitSpan outside validation/publish: lock + install.
    Commit,
    /// PublishWaitSpan: waiting for the in-order publication ticket.
    PublishWait,
    /// StmValidationSpan: read-set validation under stripe locks.
    Validation,
}

impl Phase {
    fn of(kind: EventKind) -> Option<Phase> {
        match kind {
            EventKind::WorkerIdleSpan => Some(Phase::IdleSpan),
            EventKind::WorkerBusySpan => Some(Phase::Busy),
            EventKind::EvalWaitSpan => Some(Phase::EvalWait),
            EventKind::StmCommitSpan => Some(Phase::Commit),
            EventKind::PublishWaitSpan => Some(Phase::PublishWait),
            EventKind::StmValidationSpan => Some(Phase::Validation),
            _ => None,
        }
    }
}

/// One incarnation of a future body on this lane, with its outcome.
#[derive(Debug, Clone)]
pub(crate) struct AttemptWindow {
    pub start: u64,
    pub end: u64,
    pub future: u64,
    pub attempt: u64,
    pub aborted: bool,
}

/// One top-level incarnation on this lane, with its outcome. Replay
/// restarts (`TopInternalRestart`) stay inside one window; only a commit,
/// an abort or a successor `TopBegin` closes it.
#[derive(Debug, Clone)]
pub(crate) struct TopWindow {
    pub start: u64,
    pub end: u64,
    pub top: u64,
    pub committed: bool,
    /// Box whose validation failure killed the incarnation, if attributed.
    pub conflict_box: Option<u64>,
}

/// An `EvalWaitSpan` with its blocked-on future (u64::MAX = unattributed).
#[derive(Debug, Clone, Copy)]
pub(crate) struct WaitSpan {
    pub start: u64,
    pub end: u64,
    pub future: u64,
}

/// Everything the walkers need about one lane, in query-friendly form.
pub(crate) struct LaneModel {
    pub index: usize,
    /// Disjoint, sorted, gap-free over [0, horizon): innermost phase, or
    /// `None` where no span covers the instant.
    pub phases: Vec<(u64, u64, Option<Phase>)>,
    pub waits: Vec<WaitSpan>,
    pub attempts: Vec<AttemptWindow>,
    pub tops: Vec<TopWindow>,
    /// (dequeue ts, task id, enqueue-to-dequeue delay), sorted by ts.
    pub dequeues: Vec<(u64, u64, u64)>,
    /// Sorted, deduplicated cut points: phase boundaries plus window
    /// boundaries — between two consecutive entries the category of this
    /// lane is constant.
    pub boundaries: Vec<u64>,
    /// Latest instant covered by an actual event (spans, windows,
    /// dequeues) — NOT the gap-filled timeline, which always reaches the
    /// horizon.
    pub last_activity: u64,
}

impl LaneModel {
    /// Largest boundary strictly below `t` (0 if none).
    pub fn prev_boundary(&self, t: u64) -> u64 {
        match self.boundaries.partition_point(|&b| b < t) {
            0 => 0,
            i => self.boundaries[i - 1],
        }
    }

    /// Innermost phase covering instant `point`.
    pub fn phase_at(&self, point: u64) -> Option<Phase> {
        let i = self.phases.partition_point(|&(start, _, _)| start <= point);
        if i == 0 {
            return None;
        }
        let (start, end, phase) = self.phases[i - 1];
        if start <= point && point < end {
            phase
        } else {
            None
        }
    }

    /// The wait span covering `point` with the latest start (innermost).
    pub fn wait_at(&self, point: u64) -> Option<WaitSpan> {
        self.waits
            .iter()
            .filter(|w| w.start <= point && point < w.end)
            .max_by_key(|w| w.start)
            .copied()
    }

    /// The attempt window covering `point` with the latest start.
    pub fn attempt_at(&self, point: u64) -> Option<&AttemptWindow> {
        self.attempts
            .iter()
            .filter(|w| w.start <= point && point < w.end)
            .max_by_key(|w| w.start)
    }

    /// The top-level window covering `point` with the latest start.
    pub fn top_at(&self, point: u64) -> Option<&TopWindow> {
        self.tops
            .iter()
            .filter(|w| w.start <= point && point < w.end)
            .max_by_key(|w| w.start)
    }

    /// The task dequeued on this lane exactly at `t`, if any.
    pub fn dequeue_at(&self, t: u64) -> Option<(u64, u64)> {
        self.dequeues
            .iter()
            .find(|&&(ts, _, _)| ts == t)
            .map(|&(_, task, delay)| (task, delay))
    }
}

/// The reconstructed causal model of one run.
pub(crate) struct Model {
    pub lanes: Vec<LaneModel>,
    /// Time horizon the profile partitions: the run's makespan when the
    /// caller supplied one, else the latest event end in the trace.
    pub horizon: u64,
    pub events: u64,
    /// future id → (completion ts, lane) pairs, ascending by ts.
    pub completions: BTreeMap<u64, Vec<(u64, usize)>>,
    /// Every completion across futures, ascending by ts (for resolving
    /// unattributed waits).
    pub all_completions: Vec<(u64, usize, u64)>,
    /// task id → (enqueue ts, lane).
    pub enqueues: BTreeMap<u64, (u64, usize)>,
    /// future id → spawning top id (from `FutureSubmit`).
    pub future_top: BTreeMap<u64, u64>,
    pub top_retries: u64,
    pub txn_attempt_aborts: u64,
}

impl Model {
    pub fn lane(&self, index: usize) -> Option<&LaneModel> {
        self.lanes.iter().find(|l| l.index == index)
    }

    /// Lane on which the walk starts: the one whose latest real activity
    /// reaches furthest toward the horizon (smallest index on ties, for
    /// determinism) — it is the lane that determined the makespan.
    pub fn start_lane(&self) -> usize {
        let mut best: Option<(u64, usize)> = None;
        for lane in &self.lanes {
            let end = lane.last_activity;
            let better = match best {
                Some((b_end, b_idx)) => end > b_end || (end == b_end && lane.index < b_idx),
                None => true,
            };
            if better {
                best = Some((end, lane.index));
            }
        }
        best.map(|(_, i)| i).unwrap_or(0)
    }

    /// Latest completion of `future` at or before `t`.
    pub fn completion_before(&self, future: u64, t: u64) -> Option<(u64, usize)> {
        let v = self.completions.get(&future)?;
        let i = v.partition_point(|&(ts, _)| ts <= t);
        if i == 0 {
            None
        } else {
            Some(v[i - 1])
        }
    }

    /// Latest completion of *any* future in (`after`, `t`].
    pub fn any_completion_in(&self, after: u64, t: u64) -> Option<(u64, usize, u64)> {
        let i = self.all_completions.partition_point(|&(ts, _, _)| ts <= t);
        if i == 0 {
            return None;
        }
        let (ts, lane, fut) = self.all_completions[i - 1];
        if ts > after {
            Some((ts, lane, fut))
        } else {
            None
        }
    }
}

/// Builds the model. `makespan`, when supplied, extends the horizon past
/// the last event (the tail is attributed to idle).
pub(crate) fn build(lanes: &[(usize, Vec<TraceEvent>)], makespan: Option<u64>) -> Model {
    let mut horizon = makespan.unwrap_or(0);
    let mut events = 0u64;
    let mut completions: BTreeMap<u64, Vec<(u64, usize)>> = BTreeMap::new();
    let mut all_completions: Vec<(u64, usize, u64)> = Vec::new();
    let mut enqueues: BTreeMap<u64, (u64, usize)> = BTreeMap::new();
    let mut future_top: BTreeMap<u64, u64> = BTreeMap::new();
    let mut top_retries = 0u64;
    let mut txn_attempt_aborts = 0u64;

    for (index, evs) in lanes {
        events += evs.len() as u64;
        for ev in evs {
            let end = if ev.kind.is_span() {
                ev.ts.saturating_add(ev.a)
            } else {
                ev.ts
            };
            horizon = horizon.max(end);
            match ev.kind {
                EventKind::FutureCompleted => {
                    completions.entry(ev.a).or_default().push((ev.ts, *index));
                    all_completions.push((ev.ts, *index, ev.a));
                }
                EventKind::TaskEnqueue => {
                    enqueues.insert(ev.a, (ev.ts, *index));
                }
                EventKind::FutureSubmit => {
                    future_top.insert(ev.a, ev.b);
                }
                EventKind::TopRetry => top_retries += 1,
                EventKind::TxnAttemptAbort => txn_attempt_aborts += 1,
                _ => {}
            }
        }
    }
    for v in completions.values_mut() {
        v.sort_unstable();
    }
    all_completions.sort_unstable();

    let lane_models = lanes
        .iter()
        .map(|(index, evs)| build_lane(*index, evs, horizon))
        .collect();

    Model {
        lanes: lane_models,
        horizon,
        events,
        completions,
        all_completions,
        enqueues,
        future_top,
        top_retries,
        txn_attempt_aborts,
    }
}

fn build_lane(index: usize, evs: &[TraceEvent], horizon: u64) -> LaneModel {
    let mut last_activity = 0u64;
    for ev in evs {
        let end = if ev.kind.is_span() {
            ev.ts.saturating_add(ev.a)
        } else {
            ev.ts
        };
        last_activity = last_activity.max(end.min(horizon));
    }

    // ---- Phase timeline: sweep span edges, innermost (max) phase wins.
    let mut edges: Vec<(u64, i32, Phase)> = Vec::new();
    let mut waits: Vec<WaitSpan> = Vec::new();
    for ev in evs {
        if let Some(phase) = Phase::of(ev.kind) {
            let (start, end) = (ev.ts, ev.ts.saturating_add(ev.a));
            if end > start {
                edges.push((start, 1, phase));
                edges.push((end, -1, phase));
            }
            if ev.kind == EventKind::EvalWaitSpan && end > start {
                waits.push(WaitSpan {
                    start,
                    end,
                    future: ev.b,
                });
            }
        }
    }
    edges.sort_unstable_by_key(|&(ts, delta, phase)| (ts, delta, phase));
    waits.sort_unstable_by_key(|w| (w.start, w.end));
    let mut phases: Vec<(u64, u64, Option<Phase>)> = Vec::new();
    let mut active: BTreeMap<Phase, u32> = BTreeMap::new();
    let mut cursor = 0u64;
    let mut i = 0;
    while i < edges.len() {
        let ts = edges[i].0;
        if ts > cursor {
            let phase = active.iter().rev().find(|(_, &n)| n > 0).map(|(&p, _)| p);
            phases.push((cursor, ts, phase));
            cursor = ts;
        }
        while i < edges.len() && edges[i].0 == ts {
            let (_, delta, phase) = edges[i];
            let n = active.entry(phase).or_insert(0);
            *n = (*n as i64 + delta as i64).max(0) as u32;
            i += 1;
        }
    }
    if cursor < horizon {
        phases.push((cursor, horizon, None));
    }

    // ---- Outcome windows: pair begin/terminator instants in record
    // order (per-lane instants are recorded at monotone timestamps).
    let mut attempts: Vec<AttemptWindow> = Vec::new();
    let mut open_attempts: Vec<AttemptWindow> = Vec::new();
    let mut tops: Vec<TopWindow> = Vec::new();
    let mut open_top: Option<TopWindow> = None;
    let mut dequeues: Vec<(u64, u64, u64)> = Vec::new();
    for ev in evs {
        match ev.kind {
            EventKind::FutureAttemptBegin => open_attempts.push(AttemptWindow {
                start: ev.ts,
                end: horizon,
                future: ev.a,
                attempt: ev.b,
                aborted: false,
            }),
            EventKind::FutureAttemptAbort | EventKind::FutureCompleted => {
                if let Some(pos) = open_attempts.iter().rposition(|w| w.future == ev.a) {
                    let mut w = open_attempts.remove(pos);
                    w.end = ev.ts;
                    w.aborted = ev.kind == EventKind::FutureAttemptAbort;
                    attempts.push(w);
                }
            }
            EventKind::TopBegin => {
                if let Some(mut w) = open_top.take() {
                    // A successor begin implies the predecessor was
                    // cancelled without its own terminator on this lane.
                    w.end = ev.ts;
                    tops.push(w);
                }
                open_top = Some(TopWindow {
                    start: ev.ts,
                    end: horizon,
                    top: ev.a,
                    committed: false,
                    conflict_box: None,
                });
            }
            EventKind::TopCommit | EventKind::TopConflictAbort | EventKind::TopUserAbort => {
                if let Some(mut w) = open_top.take() {
                    if w.top == ev.a {
                        w.end = ev.ts;
                        w.committed = ev.kind == EventKind::TopCommit;
                        if ev.kind == EventKind::TopConflictAbort {
                            w.conflict_box = Some(ev.b);
                        }
                        tops.push(w);
                    } else {
                        open_top = Some(w);
                    }
                }
            }
            EventKind::TaskDequeue => dequeues.push((ev.ts, ev.a, ev.b)),
            _ => {}
        }
    }
    // Dangling windows close at the horizon. An attempt with no outcome is
    // charged as waste (nothing proves it won); a top with no terminator is
    // left as useful (the run was cut at the measurement boundary).
    for mut w in open_attempts {
        w.aborted = true;
        attempts.push(w);
    }
    if let Some(mut w) = open_top.take() {
        w.committed = true;
        tops.push(w);
    }
    attempts.sort_by_key(|w| (w.start, w.end));
    tops.sort_by_key(|w| (w.start, w.end));
    dequeues.sort_unstable();

    let mut boundaries: Vec<u64> = Vec::new();
    for &(start, end, _) in &phases {
        boundaries.push(start);
        boundaries.push(end);
    }
    for w in &attempts {
        boundaries.push(w.start);
        boundaries.push(w.end);
    }
    for w in &tops {
        boundaries.push(w.start);
        boundaries.push(w.end);
    }
    for &(ts, _, _) in &dequeues {
        boundaries.push(ts);
    }
    boundaries.retain(|&b| b <= horizon);
    boundaries.sort_unstable();
    boundaries.dedup();

    LaneModel {
        index,
        phases,
        waits,
        attempts,
        tops,
        dequeues,
        boundaries,
        last_activity,
    }
}
