//! Critical-path extraction and time attribution.
//!
//! The walk runs *backward* from the horizon: at `(lane, t)` it asks what
//! the lane was doing just before `t`. Plain work peels off one
//! constant-category segment and continues earlier on the same lane; a
//! join wait jumps to the lane of the future whose completion ended the
//! wait; a task dequeue charges the queue delay and jumps to the
//! enqueuer. The emitted segments therefore tile `[0, horizon)` exactly —
//! category totals partition the makespan by construction.

use crate::dag::{Model, Phase};

/// Closed attribution category set. Every unit of (lane-)time maps to
/// exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Work inside an attempt/top incarnation that went on to commit.
    Useful,
    /// Work inside an aborted incarnation (speculation that lost).
    Wasted,
    /// Waiting for the in-order publication ticket.
    PublishWait,
    /// A task sitting in the pool queue before a worker picked it up.
    QueueDelay,
    /// Commit-time read-set validation under stripe locks.
    Validation,
    /// Commit span outside validation/publish: lock acquisition + install.
    CommitStall,
    /// Blocked evaluating a future (a join edge that could not be walked
    /// through, or its residual wake-up slack).
    JoinWait,
    /// Nothing attributable was happening.
    Idle,
}

/// All categories, in report order.
pub const ALL_CATEGORIES: [Category; 8] = [
    Category::Useful,
    Category::Wasted,
    Category::PublishWait,
    Category::QueueDelay,
    Category::Validation,
    Category::CommitStall,
    Category::JoinWait,
    Category::Idle,
];

impl Category {
    pub fn name(self) -> &'static str {
        match self {
            Category::Useful => "useful",
            Category::Wasted => "wasted",
            Category::PublishWait => "publish_wait",
            Category::QueueDelay => "queue_delay",
            Category::Validation => "validation",
            Category::CommitStall => "commit_stall",
            Category::JoinWait => "join_wait",
            Category::Idle => "idle",
        }
    }
}

/// One attributed interval of the critical path (or of a lane tiling).
#[derive(Debug, Clone)]
pub struct Segment {
    pub lane: usize,
    pub start: u64,
    pub end: u64,
    pub category: Category,
    /// Top-level incarnation the time belongs to, when known.
    pub top: Option<u64>,
    /// Future the time belongs to (work inside its attempt, or the future
    /// a join/queue edge was blocked on), when known.
    pub future: Option<u64>,
    /// Attempt index within the future, when inside an attempt window.
    pub attempt: Option<u64>,
    /// Conflicting box attributed to a wasted incarnation, when known.
    pub box_id: Option<u64>,
}

impl Segment {
    pub fn dur(&self) -> u64 {
        self.end - self.start
    }
}

/// Category + culprits of lane `lane` at instant `point` (no jumps).
fn attribute(model: &Model, lane: &crate::dag::LaneModel, point: u64) -> Segment {
    let phase = lane.phase_at(point);
    let mut seg = Segment {
        lane: lane.index,
        start: 0,
        end: 0,
        category: Category::Idle,
        top: None,
        future: None,
        attempt: None,
        box_id: None,
    };
    // Windows give ownership even inside commit/validation phases.
    if let Some(w) = lane.attempt_at(point) {
        seg.future = Some(w.future);
        seg.attempt = Some(w.attempt);
        seg.top = model.future_top.get(&w.future).copied();
        seg.category = if w.aborted {
            Category::Wasted
        } else {
            Category::Useful
        };
    } else if let Some(w) = lane.top_at(point) {
        seg.top = Some(w.top);
        seg.box_id = w.conflict_box;
        seg.category = if w.committed {
            Category::Useful
        } else {
            Category::Wasted
        };
    }
    match phase {
        Some(Phase::Validation) => seg.category = Category::Validation,
        Some(Phase::PublishWait) => seg.category = Category::PublishWait,
        Some(Phase::Commit) => seg.category = Category::CommitStall,
        Some(Phase::EvalWait) => {
            seg.category = Category::JoinWait;
            if let Some(w) = lane.wait_at(point) {
                if w.future != u64::MAX {
                    seg.future = Some(w.future);
                }
            }
        }
        Some(Phase::IdleSpan) if seg.future.is_none() && seg.top.is_none() => {
            seg.category = Category::Idle;
        }
        Some(Phase::Busy) if seg.future.is_none() && seg.top.is_none() => {
            // A task outside any window: generic pool housekeeping.
            seg.category = Category::Useful;
        }
        _ => {}
    }
    seg
}

/// Backward walk from `(start_lane, horizon)`. Returns segments tiling
/// `[0, horizon)`, ascending by start.
pub(crate) fn critical_path(model: &Model) -> Vec<Segment> {
    let horizon = model.horizon;
    let mut segs: Vec<Segment> = Vec::new();
    if horizon == 0 || model.lanes.is_empty() {
        return segs;
    }
    let mut lane_idx = model.start_lane();
    let mut t = horizon;
    let push = |segs: &mut Vec<Segment>, mut s: Segment, start: u64, end: u64| {
        if end > start {
            s.start = start;
            s.end = end;
            segs.push(s);
        }
    };
    // Termination: every iteration either moves `t` strictly down or
    // jumps along a causal edge to a lane not yet visited at this `t`
    // (`visited_at_t` blocks same-instant cycles in pathological traces);
    // the guard converts anything left into a padded (still
    // partition-exact) path.
    let mut visited_at_t: Vec<usize> = vec![lane_idx];
    let mut guard = 0u64;
    while t > 0 {
        guard += 1;
        if guard > 10_000_000 {
            push(
                &mut segs,
                Segment {
                    lane: lane_idx,
                    start: 0,
                    end: 0,
                    category: Category::Idle,
                    top: None,
                    future: None,
                    attempt: None,
                    box_id: None,
                },
                0,
                t,
            );
            break;
        }
        let lane = match model.lane(lane_idx) {
            Some(l) => l,
            None => {
                // Jump target lane recorded nothing: nothing to attribute.
                push(
                    &mut segs,
                    Segment {
                        lane: lane_idx,
                        start: 0,
                        end: 0,
                        category: Category::Idle,
                        top: None,
                        future: None,
                        attempt: None,
                        box_id: None,
                    },
                    0,
                    t,
                );
                break;
            }
        };
        let point = t - 1;
        let phase = lane.phase_at(point);

        // Join edge: jump to the completion that ended the wait.
        if phase == Some(Phase::EvalWait) {
            if let Some(w) = lane.wait_at(point) {
                let producer = if w.future != u64::MAX {
                    model
                        .completion_before(w.future, t)
                        .map(|(ts, l)| (ts, l, w.future))
                } else {
                    model.any_completion_in(w.start, t)
                };
                if let Some((p_ts, p_lane, fut)) = producer {
                    let advances = p_ts < t || !visited_at_t.contains(&p_lane);
                    if p_ts > w.start && p_ts <= t && advances {
                        let mut s = attribute(model, lane, point);
                        s.category = Category::JoinWait;
                        s.future = Some(fut);
                        push(&mut segs, s, p_ts, t);
                        if p_ts < t {
                            visited_at_t.clear();
                        }
                        visited_at_t.push(p_lane);
                        t = p_ts;
                        lane_idx = p_lane;
                        continue;
                    }
                }
            }
            // Unresolvable (dangling) join edge: charge as join-wait on
            // this lane and keep walking locally.
            let prev = lane.prev_boundary(t);
            push(&mut segs, attribute(model, lane, point), prev, t);
            if prev < t {
                visited_at_t.clear();
                visited_at_t.push(lane_idx);
            }
            t = prev;
            continue;
        }

        // Queue edge: the segment after `t` started with a dequeue here.
        if let Some((task, delay)) = lane.dequeue_at(t) {
            let target = model.enqueues.get(&task).copied();
            // A zero-delay jump must reach a lane not yet visited at this
            // `t` (same same-instant cycle-breaking as the join edge).
            let moves = delay > 0
                || target
                    .map(|(_, l)| !visited_at_t.contains(&l))
                    .unwrap_or(false);
            if matches!(phase, None | Some(Phase::IdleSpan)) && moves {
                let q = t.saturating_sub(delay);
                push(
                    &mut segs,
                    Segment {
                        lane: lane_idx,
                        start: 0,
                        end: 0,
                        category: Category::QueueDelay,
                        top: None,
                        future: None,
                        attempt: None,
                        box_id: None,
                    },
                    q,
                    t,
                );
                if q < t {
                    visited_at_t.clear();
                }
                t = q;
                if let Some((e_ts, e_lane)) = target {
                    if e_ts <= t {
                        lane_idx = e_lane;
                    }
                }
                visited_at_t.push(lane_idx);
                continue;
            }
        }

        let prev = lane.prev_boundary(t);
        push(&mut segs, attribute(model, lane, point), prev, t);
        if prev < t {
            visited_at_t.clear();
            visited_at_t.push(lane_idx);
        }
        t = prev;
    }
    segs.reverse();
    segs
}

/// Tiles `[0, horizon)` on one lane with attributed segments (no jumps;
/// waits and queue gaps stay in their own categories). The sum over all
/// lanes is the run's aggregate lane-time accounting.
pub(crate) fn lane_tiling(model: &Model, lane: &crate::dag::LaneModel) -> Vec<Segment> {
    let horizon = model.horizon;
    let mut segs = Vec::new();
    if horizon == 0 {
        return segs;
    }
    let mut cuts: Vec<u64> = lane.boundaries.clone();
    if cuts.first() != Some(&0) {
        cuts.insert(0, 0);
    }
    if cuts.last() != Some(&horizon) {
        cuts.push(horizon);
    }
    for pair in cuts.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if b <= a {
            continue;
        }
        let mut s = attribute(model, lane, a);
        s.start = a;
        s.end = b;
        segs.push(s);
    }
    segs
}
