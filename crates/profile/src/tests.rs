//! Unit + adversarial tests over synthetic traces. Integration tests
//! against the live runtime (both backends) live in `wtf-workloads`.

use super::*;
use wtf_trace::EventKind;

fn ev(ts: u64, kind: EventKind, a: u64, b: u64) -> TraceEvent {
    TraceEvent { ts, kind, a, b }
}

fn cat(p: &Profile, c: Category) -> u64 {
    *p.path_categories().get(&c).unwrap_or(&0)
}

/// Lane 0 runs top 1 and blocks on future 7; lane 1 runs the future's
/// body. The walk must jump the join edge and attribute the body time.
fn join_scenario() -> Vec<(usize, Vec<TraceEvent>)> {
    vec![
        (
            0,
            vec![
                ev(0, EventKind::TopBegin, 1, 0),
                ev(8, EventKind::FutureSubmit, 7, 1),
                // Span events carry ts = start, a = duration.
                ev(10, EventKind::EvalWaitSpan, 30, 7),
                ev(0, EventKind::WorkerBusySpan, 50, 0),
                ev(50, EventKind::TopCommit, 1, 0),
            ],
        ),
        (
            1,
            vec![
                ev(5, EventKind::FutureAttemptBegin, 7, 0),
                ev(5, EventKind::WorkerBusySpan, 35, 0),
                ev(40, EventKind::FutureCompleted, 7, 0),
            ],
        ),
    ]
}

#[test]
fn truncated_trace_hard_fails() {
    let err = Profile::from_lanes(join_scenario(), 3).unwrap_err();
    assert!(
        err.0.contains("trace truncated: 3 events dropped"),
        "unexpected message: {}",
        err.0
    );
}

#[test]
fn empty_trace_profiles_to_nothing() {
    let p = Profile::from_lanes(vec![], 0).unwrap();
    assert_eq!(p.makespan(), 0);
    assert!(p.critical_path().is_empty());
    p.verify_partition().unwrap();
    assert_eq!(p.speedup_bound(), Some(1.0));
    assert_eq!(p.folded_stacks(), "");
    let r = p.report(10).to_string();
    assert!(r.contains("\"schema\":\"wtf-profile/v1\""));
}

#[test]
fn join_edge_jumps_to_producer_lane() {
    let p = Profile::from_lanes(join_scenario(), 0).unwrap();
    assert_eq!(p.makespan(), 50);
    p.verify_partition().unwrap();
    // [40,50) top commit tail + [5,40) future body are useful; [0,5)
    // before the body started is idle. No time is charged to join-wait:
    // the walk crossed the edge instead of waiting on it.
    assert_eq!(cat(&p, Category::Useful), 45);
    assert_eq!(cat(&p, Category::Idle), 5);
    assert_eq!(cat(&p, Category::JoinWait), 0);
    // The future's body dominates the path, so it heads the culprit list.
    let culprits = p.culprits();
    assert_eq!(culprits[0], ("future", 7, 35));
    // FutureSubmit links future 7 to top 1, so the folded stack nests it.
    let folded = p.folded_stacks();
    assert!(
        folded.contains("top:1;future:7#a0;useful 35"),
        "folded:\n{folded}"
    );
}

#[test]
fn dangling_join_edge_charges_join_wait_locally() {
    // The wait's producer never completes: the edge cannot be walked
    // through, so the time stays on this lane as join-wait.
    let lanes = vec![(
        0,
        vec![
            ev(0, EventKind::EvalWaitSpan, 20, 7),
            ev(0, EventKind::WorkerBusySpan, 20, 0),
        ],
    )];
    let p = Profile::from_lanes(lanes, 0).unwrap();
    assert_eq!(p.makespan(), 20);
    p.verify_partition().unwrap();
    assert_eq!(cat(&p, Category::JoinWait), 20);
    assert_eq!(p.culprits()[0], ("future", 7, 20));
}

#[test]
fn retry_lineage_attributes_waste_and_speedup_bound() {
    // Top 1 aborts on box 99 at t=20, retries as top 2, commits at t=50.
    let lanes = vec![(
        0,
        vec![
            ev(0, EventKind::TopBegin, 1, 0),
            ev(0, EventKind::WorkerBusySpan, 50, 0),
            ev(20, EventKind::TopConflictAbort, 1, 99),
            ev(20, EventKind::TopRetry, 2, 1),
            ev(20, EventKind::TopBegin, 2, 0),
            ev(50, EventKind::TopCommit, 2, 0),
        ],
    )];
    let p = Profile::from_lanes(lanes, 0).unwrap();
    p.verify_partition().unwrap();
    assert_eq!(cat(&p, Category::Wasted), 20);
    assert_eq!(cat(&p, Category::Useful), 30);
    // "What if aborts were free": 50 / (50 - 20).
    assert_eq!(p.speedup_bound(), Some(50.0 / 30.0));
    let r = p.report(10).to_string();
    assert!(r.contains("\"top_retries\":1"), "report:\n{r}");
    // The conflict box shows up as a culprit of the wasted window.
    assert!(p.culprits().contains(&("box", 99, 20)));
}

#[test]
fn queue_delay_charged_and_walk_jumps_to_enqueuer() {
    let lanes = vec![
        (0, vec![ev(0, EventKind::TaskEnqueue, 3, 1)]),
        (
            1,
            vec![
                ev(15, EventKind::TaskDequeue, 3, 15),
                ev(15, EventKind::WorkerBusySpan, 15, 0),
            ],
        ),
    ];
    let p = Profile::from_lanes(lanes, 0).unwrap();
    assert_eq!(p.makespan(), 30);
    p.verify_partition().unwrap();
    assert_eq!(cat(&p, Category::QueueDelay), 15);
    assert_eq!(cat(&p, Category::Useful), 15);
}

#[test]
fn commit_pipeline_phases_override_window_category() {
    // Validation and publish-wait nested inside a commit span inside a
    // busy span: innermost wins, remainder of the commit is commit-stall.
    let lanes = vec![(
        0,
        vec![
            ev(0, EventKind::TopBegin, 1, 0),
            ev(0, EventKind::WorkerBusySpan, 40, 0),
            ev(10, EventKind::StmCommitSpan, 30, 0),
            ev(10, EventKind::StmValidationSpan, 8, 0),
            ev(18, EventKind::PublishWaitSpan, 12, 0),
            ev(40, EventKind::TopCommit, 1, 0),
        ],
    )];
    let p = Profile::from_lanes(lanes, 0).unwrap();
    p.verify_partition().unwrap();
    assert_eq!(cat(&p, Category::Useful), 10);
    assert_eq!(cat(&p, Category::Validation), 8);
    assert_eq!(cat(&p, Category::PublishWait), 12);
    assert_eq!(cat(&p, Category::CommitStall), 10);
}

#[test]
fn explicit_makespan_extends_horizon_as_idle() {
    let lanes = vec![(0, vec![ev(0, EventKind::WorkerBusySpan, 10, 0)])];
    let p = Profile::from_lanes_with_makespan(lanes, 0, Some(25)).unwrap();
    assert_eq!(p.makespan(), 25);
    p.verify_partition().unwrap();
    assert_eq!(cat(&p, Category::Idle), 15);
}

#[test]
fn chrome_round_trip_preserves_the_report() {
    let lanes = join_scenario();
    let direct = Profile::from_lanes(lanes.clone(), 0).unwrap();
    let exported = wtf_trace::chrome::chrome_trace(&lanes);
    let back = Profile::from_chrome_json(&exported).unwrap();
    assert_eq!(direct.report(10).to_string(), back.report(10).to_string());
    assert_eq!(direct.folded_stacks(), back.folded_stacks());
}

#[test]
fn report_is_byte_deterministic() {
    let a = Profile::from_lanes(join_scenario(), 0).unwrap();
    let b = Profile::from_lanes(join_scenario(), 0).unwrap();
    assert_eq!(a.report(10).to_string(), b.report(10).to_string());
    assert_eq!(a.folded_stacks(), b.folded_stacks());
}

#[test]
fn all_wasted_path_has_no_speedup_bound() {
    let lanes = vec![(
        0,
        vec![
            ev(0, EventKind::TopBegin, 1, 0),
            ev(0, EventKind::WorkerBusySpan, 10, 0),
            ev(10, EventKind::TopConflictAbort, 1, 5),
        ],
    )];
    let p = Profile::from_lanes(lanes, 0).unwrap();
    p.verify_partition().unwrap();
    assert_eq!(cat(&p, Category::Wasted), 10);
    assert_eq!(p.speedup_bound(), None);
    assert!(p.report(4).to_string().contains("\"speedup_bound\":null"));
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A small event grammar: any mix of span and instant kinds with
    /// bounded timestamps/ids, shaped only loosely like a real run.
    fn arbitrary_event(sel: u64, ts: u64, a: u64, b: u64) -> TraceEvent {
        let kinds = [
            EventKind::WorkerBusySpan,
            EventKind::WorkerIdleSpan,
            EventKind::EvalWaitSpan,
            EventKind::StmCommitSpan,
            EventKind::StmValidationSpan,
            EventKind::PublishWaitSpan,
            EventKind::TopBegin,
            EventKind::TopCommit,
            EventKind::TopConflictAbort,
            EventKind::TopRetry,
            EventKind::FutureSubmit,
            EventKind::FutureAttemptBegin,
            EventKind::FutureAttemptAbort,
            EventKind::FutureCompleted,
            EventKind::TaskEnqueue,
            EventKind::TaskDequeue,
            EventKind::TxnAttemptAbort,
        ];
        let kind = kinds[(sel as usize) % kinds.len()];
        TraceEvent { ts, kind, a, b }
    }

    proptest! {
        /// The load-bearing invariant chain on arbitrary (even causally
        /// nonsensical) traces: the profiler never panics, the critical
        /// path exactly partitions the makespan, and the makespan never
        /// exceeds the aggregate lane-time totals.
        #[test]
        fn partition_invariants_hold_on_arbitrary_traces(
            raw in proptest::collection::vec(
                proptest::collection::vec(
                    (0u64..17, 0u64..120, 0u64..40, 0u64..8),
                    0..24,
                ),
                1..4,
            )
        ) {
            let lanes: Vec<(usize, Vec<TraceEvent>)> = raw
                .into_iter()
                .enumerate()
                .map(|(i, evs)| {
                    let mut evs: Vec<TraceEvent> = evs
                        .into_iter()
                        .map(|(sel, ts, a, b)| arbitrary_event(sel, ts, a, b))
                        .collect();
                    // Real lanes record instants at monotone timestamps.
                    evs.sort_by_key(|e| e.ts);
                    (i, evs)
                })
                .collect();
            let p = Profile::from_lanes(lanes.clone(), 0).unwrap();
            p.verify_partition().unwrap();
            let cp_len: u64 = p.path_categories().values().sum();
            prop_assert_eq!(cp_len, p.makespan());
            let totals: u64 = p.lane_totals().values().sum();
            prop_assert!(p.makespan() <= totals);
            // Determinism: rebuilding from the same lanes reproduces the
            // report byte for byte.
            let q = Profile::from_lanes(lanes, 0).unwrap();
            prop_assert_eq!(p.report(10).to_string(), q.report(10).to_string());
        }
    }
}
