//! Flamegraph folded-stacks export.
//!
//! One line per aggregated stack, `frame;frame;... <weight>`, the format
//! `flamegraph.pl` and speedscope ingest directly. Frames nest top-level
//! → future#attempt → category, so the width of a `wasted` leaf under a
//! future is exactly that future's aborted-speculation time. Weights are
//! virtual-clock units (they render as sample counts). Lines are sorted
//! lexicographically, so the export is byte-deterministic.

use crate::dag::Model;
use crate::path::lane_tiling;
use std::collections::BTreeMap;

pub(crate) fn folded_stacks(model: &Model) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for lane in &model.lanes {
        for seg in lane_tiling(model, lane) {
            let mut frames: Vec<String> = Vec::new();
            match seg.top {
                Some(top) => frames.push(format!("top:{top}")),
                None => frames.push(format!("lane:{}", lane.index)),
            }
            if let Some(fut) = seg.future {
                match seg.attempt {
                    Some(k) => frames.push(format!("future:{fut}#a{k}")),
                    None => frames.push(format!("future:{fut}")),
                }
            }
            frames.push(seg.category.name().to_string());
            *agg.entry(frames.join(";")).or_insert(0) += seg.dur();
        }
    }
    let mut out = String::new();
    for (stack, weight) in agg {
        if weight == 0 {
            continue;
        }
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}
