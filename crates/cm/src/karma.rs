//! Karma: priority accrued per aborted work.
//!
//! Every abort credits the loser with the virtual cost of the attempt it
//! just wasted — its *karma*. A poor transaction (low karma relative to
//! the richest live competitor) waits proportionally to its deficit
//! before retrying, and when the *richest* victim aborts it is granted a
//! priority window sized by its karma: until the window's deadline,
//! every other transaction defers — at admission and on its own aborts —
//! so the aggressors' wake-ups align into one quiet gap the victim can
//! finally commit in. Admission-side deferral is essential: the short
//! aggressor that keeps winning never aborts, so abort-side waits alone
//! never touch it; and without the aligned window, per-actor deficit
//! taxes merely stagger the aggressors into a steady commit stream that
//! starves the victim just as effectively.
//!
//! The ledger is exact and conserved: `bank + Σ live = accrued` at all
//! times, where `bank` is the karma retired by commits. The proptest
//! oracle in `tests/oracles.rs` drives arbitrary abort/commit
//! interleavings against this invariant.

use crate::{ActorSource, CmCounters, CmDecision, CmKind, CmStats, ContentionManager};
use parking_lot::Mutex;
use std::collections::BTreeMap;

#[derive(Debug, Default)]
struct Ledger {
    /// Live karma per actor token.
    live: BTreeMap<u64, u64>,
    /// Karma retired by committed actors.
    bank: u64,
    /// Everything ever credited (= bank + Σ live).
    accrued: u64,
    /// Priority window: `(actor, until)` — while it holds, every *other*
    /// actor defers admission (and retry) to `until`. Granted to the
    /// richest live actor on its abort, sized by its karma, cleared when
    /// it commits. Aligning the aggressors' wake-ups is the point: a
    /// staggered tax alone just turns them into a steady commit stream.
    protected: Option<(u64, u64)>,
}

pub struct KarmaCm {
    ledger: Mutex<Ledger>,
    /// Wait ceiling: a huge deficit must not park a transaction forever.
    cap: u64,
    /// Deficit units per wait unit (softens the proportionality).
    scale: u64,
    actors: ActorSource,
    counters: CmCounters,
}

impl KarmaCm {
    pub fn new(cap: u64, scale: u64) -> KarmaCm {
        assert!(cap > 0 && scale > 0, "karma needs positive cap and scale");
        KarmaCm {
            ledger: Mutex::new(Ledger::default()),
            cap,
            scale,
            actors: ActorSource::default(),
            counters: CmCounters::default(),
        }
    }

    /// `(bank, Σ live, accrued)` — the conservation oracle's view.
    pub fn ledger_totals(&self) -> (u64, u64, u64) {
        let g = self.ledger.lock();
        (g.bank, g.live.values().sum(), g.accrued)
    }

    /// Current karma of one actor (0 when unknown/retired).
    pub fn karma_of(&self, actor: u64) -> u64 {
        self.ledger.lock().live.get(&actor).copied().unwrap_or(0)
    }

    /// Remaining hold of the priority window for `actor` at `now`: zero
    /// for the window's owner, for an expired window, or when no window
    /// is granted.
    fn window_hold(g: &Ledger, actor: u64, now: u64) -> u64 {
        match g.protected {
            Some((owner, until)) if owner != actor => until.saturating_sub(now),
            _ => 0,
        }
    }
}

impl Default for KarmaCm {
    fn default() -> KarmaCm {
        KarmaCm::new(6_400, 32)
    }
}

impl ContentionManager for KarmaCm {
    fn kind(&self) -> CmKind {
        CmKind::Karma
    }

    fn begin_txn(&self) -> u64 {
        self.actors.next()
    }

    fn admission_wait(&self, actor: u64, now: u64) -> u64 {
        let g = self.ledger.lock();
        let wait = Self::window_hold(&g, actor, now);
        drop(g);
        self.counters.count_wait(wait);
        wait
    }

    fn on_abort(
        &self,
        actor: u64,
        _conflict_box: Option<u64>,
        streak: u32,
        work: u64,
        now: u64,
    ) -> CmDecision {
        let mut g = self.ledger.lock();
        let entry = g.live.entry(actor).or_insert(0);
        *entry = entry.saturating_add(work);
        let own = *entry;
        g.accrued = g.accrued.saturating_add(work);
        // Deficit against the richest live competitor. `max >= own`
        // always holds (own is in the map), so this never underflows.
        let max = g.live.values().copied().max().unwrap_or(own);
        let wait = if own == max {
            if streak >= 2 {
                // The richest repeat victim earns a priority window. It
                // waits out a short settle first — aggressors still
                // mid-flight at the grant commit within their attempt
                // length, and an attempt restarted under their commits
                // is doomed no matter how long everyone else is held —
                // then owns the rest of the window: settle + one full
                // attempt + margin.
                let settle = (work / 8).min(self.cap / 8);
                let until = now.saturating_add((settle + work + work / 8).min(self.cap));
                if g.protected.is_none_or(|(_, u)| until >= u) {
                    g.protected = Some((actor, until));
                }
                settle
            } else {
                0
            }
        } else {
            // A poorer loser waits out the larger of its deficit pace
            // and the protected window.
            ((max - own) / self.scale)
                .min(self.cap)
                .max(Self::window_hold(&g, actor, now))
        };
        drop(g);
        self.counters.count_wait(wait);
        CmDecision {
            wait,
            flagged: None,
        }
    }

    fn on_commit(&self, actor: u64) {
        let mut g = self.ledger.lock();
        if let Some(k) = g.live.remove(&actor) {
            g.bank = g.bank.saturating_add(k);
        }
        if g.protected.is_some_and(|(a, _)| a == actor) {
            g.protected = None;
        }
    }

    fn stats(&self) -> CmStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn richest_actor_retries_immediately_poorer_waits() {
        let cm = KarmaCm::new(10_000, 1);
        let rich = cm.begin_txn();
        let poor = cm.begin_txn();
        assert_eq!(cm.on_abort(rich, None, 1, 5_000, 0).wait, 0, "only actor");
        // poor credits 500, rich holds 5000: deficit 4500 at scale 1.
        let d = cm.on_abort(poor, None, 1, 500, 10);
        assert_eq!(cm.karma_of(poor), 500);
        assert_eq!(d.wait, 4_500, "wait = deficit vs richest live actor");
    }

    #[test]
    fn commit_retires_karma_to_bank() {
        let cm = KarmaCm::default();
        let a = cm.begin_txn();
        cm.on_abort(a, None, 1, 700, 0);
        assert_eq!(cm.ledger_totals(), (0, 700, 700));
        cm.on_commit(a);
        assert_eq!(
            cm.ledger_totals(),
            (700, 0, 700),
            "conserved across handoff"
        );
        cm.on_commit(a);
        assert_eq!(
            cm.ledger_totals(),
            (700, 0, 700),
            "double retire is a no-op"
        );
    }

    #[test]
    fn repeat_victim_priority_window_holds_poorer_actors() {
        let cm = KarmaCm::new(12_800, 4);
        let victim = cm.begin_txn();
        let aggressor = cm.begin_txn();
        assert_eq!(
            cm.on_abort(victim, None, 1, 4_000, 0).wait,
            0,
            "first abort grants no window"
        );
        assert_eq!(cm.admission_wait(aggressor, 100), 0);
        // Second consecutive abort: settle = 4000/8, window deadline
        // now + settle + work + work/8 = 8000 + 5000.
        let d = cm.on_abort(victim, None, 2, 4_000, 8_000);
        assert_eq!(d.wait, 500, "victim waits out the straggler settle");
        assert_eq!(
            cm.admission_wait(aggressor, 8_200),
            4_800,
            "poorer actor held to the window deadline"
        );
        assert_eq!(cm.admission_wait(victim, 8_200), 0, "owner is admitted");
        assert_eq!(cm.admission_wait(aggressor, 13_100), 0, "window expired");
        let d = cm.on_abort(victim, None, 3, 4_000, 14_000);
        assert_eq!(d.wait, 500, "window re-arms while the victim keeps losing");
        cm.on_commit(victim);
        assert_eq!(
            cm.admission_wait(aggressor, 14_600),
            0,
            "commit clears the window"
        );
    }

    #[test]
    fn wait_is_capped() {
        let cm = KarmaCm::new(100, 1);
        let rich = cm.begin_txn();
        let poor = cm.begin_txn();
        cm.on_abort(rich, None, 1, 1_000_000, 0);
        assert_eq!(cm.on_abort(poor, None, 1, 1, 0).wait, 100);
    }
}
