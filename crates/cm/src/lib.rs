//! # wtf-cm — pluggable contention management
//!
//! The tracer charges every abort to a concrete box, and the telemetry
//! layer detects abort storms — but through PR 8 nothing consumed those
//! signals at runtime: an aborted transaction retried *immediately* into
//! the same hot box. This crate closes the loop with a
//! [`ContentionManager`] trait consulted on every abort/retry decision,
//! in the generic [`wtf-backend`] retry loop, in mvstm's native
//! `Stm::atomic`, and in `wtf-core`'s top-level retry loop.
//!
//! ## Design: pure state machines
//!
//! Policies never sleep, never read a clock and never record trace
//! events. They receive the current virtual time and the aborted
//! attempt's cost as plain integers and return a [`CmDecision`] saying
//! how long the loser should wait and whether a box just got flagged for
//! serialized admission. The *caller* applies the wait (one
//! `Clock::advance` under the virtual clock — deterministic by
//! construction) and records the `CmWait` / `CmBoxFlagged` /
//! `AdaptiveFlip` trace events. This keeps every policy trivially
//! testable: the proptest oracles in `tests/oracles.rs` drive the state
//! machines with arbitrary abort streams and check their invariants
//! without any runtime in the loop.
//!
//! ## The policies
//!
//! | kind | decision rule |
//! |---|---|
//! | `immediate` | retry at once (the pre-PR-9 behavior; default) |
//! | `backoff` | capped exponential: `min(base << (streak-1), cap)` |
//! | `karma` | priority accrued per aborted work; poorer txn waits, and newcomers pay a deficit-proportional admission tax |
//! | `hotspot` | per-box abort streaks; flagged boxes gate admission |
//! | `adaptive` | backoff + WO→SO flip on internal-abort hysteresis |
//!
//! Selection mirrors the `WTF_BACKEND` plumbing exactly: the `WTF_CM`
//! environment variable, [`RunSpec::cm`](../wtf_workloads), or
//! `FutureTm::builder().cm(..)`, with [`with_cm`] as the scoped override
//! for in-process sweeps.

mod adaptive;
mod backoff;
mod hotspot;
mod karma;

pub use adaptive::AdaptiveCm;
pub use backoff::BackoffCm;
pub use hotspot::HotspotCm;
pub use karma::KarmaCm;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which contention-management policy a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmKind {
    /// Retry immediately (the default; today's behavior).
    Immediate,
    /// Capped exponential backoff on consecutive aborts.
    Backoff,
    /// Karma: priority accrued per aborted work, loser waits.
    Karma,
    /// Hotspot: serialize admission to boxes with abort streaks.
    Hotspot,
    /// Backoff plus adaptive WO→SO future serialization.
    Adaptive,
}

impl CmKind {
    pub const ALL: [CmKind; 5] = [
        CmKind::Immediate,
        CmKind::Backoff,
        CmKind::Karma,
        CmKind::Hotspot,
        CmKind::Adaptive,
    ];

    pub fn name(self) -> &'static str {
        match self {
            CmKind::Immediate => "immediate",
            CmKind::Backoff => "backoff",
            CmKind::Karma => "karma",
            CmKind::Hotspot => "hotspot",
            CmKind::Adaptive => "adaptive",
        }
    }

    pub fn parse(name: &str) -> Option<CmKind> {
        CmKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// The policy selected by the environment: the scoped [`with_cm`]
    /// override if one is active, else `WTF_CM` (default `immediate`).
    /// Panics on an unknown `WTF_CM` value — a typo'd policy silently
    /// running `immediate` would invalidate a comparison sweep.
    pub fn from_env() -> CmKind {
        match CM_OVERRIDE.load(Ordering::SeqCst) {
            0 => match std::env::var("WTF_CM") {
                Ok(v) if !v.is_empty() => CmKind::parse(&v)
                    .unwrap_or_else(|| panic!("WTF_CM={v}: unknown contention manager")),
                _ => CmKind::Immediate,
            },
            i => CmKind::ALL[i as usize - 1],
        }
    }

    /// Builds a fresh instance of this policy with its default tuning.
    pub fn build(self) -> Arc<dyn ContentionManager> {
        match self {
            CmKind::Immediate => Arc::new(ImmediateCm::default()),
            CmKind::Backoff => Arc::new(BackoffCm::default()),
            CmKind::Karma => Arc::new(KarmaCm::default()),
            CmKind::Hotspot => Arc::new(HotspotCm::default()),
            CmKind::Adaptive => Arc::new(AdaptiveCm::default()),
        }
    }
}

// ordering: seqcst-store / seqcst-load — test-only override knob, set
// under `CM_OVERRIDE_LOCK` and read once per TM construction. SeqCst
// keeps the knob trivially ordered; it is never on a hot path.
static CM_OVERRIDE: AtomicU64 = AtomicU64::new(0);
static CM_OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` with [`CmKind::from_env`] pinned to `kind`, restoring the
/// environment default afterwards (mirrors `wtf_backend::with_backend`).
/// Serialized process-wide, so concurrent sweeps cannot interleave
/// overrides.
pub fn with_cm<T>(kind: CmKind, f: impl FnOnce() -> T) -> T {
    let _guard = CM_OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let idx = CmKind::ALL.iter().position(|k| *k == kind).unwrap();
    CM_OVERRIDE.store(idx as u64 + 1, Ordering::SeqCst);
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            CM_OVERRIDE.store(0, Ordering::SeqCst);
        }
    }
    let _reset = Reset;
    f()
}

/// The current virtual time, or 0 on a thread that never entered a
/// clock (plain-thread unit tests). Retry loops stamp each attempt's
/// start with this so the policy sees the wasted attempt's cost.
pub fn attempt_now() -> u64 {
    wtf_vclock::Clock::try_current().map_or(0, |c| c.now())
}

/// The one retry-site protocol shared by every loop that consults a CM
/// (the generic `wtf-backend::atomic`, mvstm's native `Stm::atomic`, and
/// `wtf-core`'s top-level loop): consult the policy, record the
/// `CmBoxFlagged` / `CmWait` events, and apply the wait as a single
/// `Clock::advance`. On a thread without a clock the policy is still
/// consulted (streaks and gates stay coherent) but the wait cannot be
/// applied, so it is neither advanced nor recorded.
pub fn pause_after_abort(
    cm: &dyn ContentionManager,
    tracer: &wtf_trace::Tracer,
    actor: u64,
    conflict_box: Option<u64>,
    streak: u32,
    attempt_start: u64,
) {
    let (clock, now) = match wtf_vclock::Clock::try_current() {
        Some(c) => {
            let now = c.now();
            (Some(c), now)
        }
        None => (None, 0),
    };
    let work = now.saturating_sub(attempt_start);
    let decision = cm.on_abort(actor, conflict_box, streak, work, now);
    if let Some((box_id, gate_deadline)) = decision.flagged {
        tracer.record(wtf_trace::EventKind::CmBoxFlagged, box_id, gate_deadline);
    }
    if let Some(clock) = clock {
        if decision.wait > 0 {
            tracer.record(wtf_trace::EventKind::CmWait, actor, decision.wait);
            clock.advance(decision.wait);
        }
        drain_admission(cm, tracer, actor, &clock);
    }
}

/// Re-checks [`ContentionManager::admission_wait`] until the actor is
/// admitted (or a progress bound trips). A single pre-computed wait is
/// not enough: a priority window granted *while this actor slept* would
/// otherwise let it wake mid-window and trample the protected victim.
/// The iteration bound keeps a pathological grant stream from parking an
/// actor forever — after it, the actor proceeds regardless.
fn drain_admission(
    cm: &dyn ContentionManager,
    tracer: &wtf_trace::Tracer,
    actor: u64,
    clock: &wtf_vclock::Clock,
) {
    for _ in 0..32 {
        let wait = cm.admission_wait(actor, clock.now());
        if wait == 0 {
            return;
        }
        tracer.record(wtf_trace::EventKind::CmWait, actor, wait);
        clock.advance(wait);
    }
}

/// The admission-side counterpart of [`pause_after_abort`], applied once
/// per logical transaction right after `begin_txn`: consult
/// [`ContentionManager::admission_wait`] and, on a clocked thread, apply
/// the wait as one `Clock::advance` recorded as a `CmWait` event. On a
/// clockless thread the wait cannot be applied and is skipped entirely.
pub fn pause_at_begin(cm: &dyn ContentionManager, tracer: &wtf_trace::Tracer, actor: u64) {
    let Some(clock) = wtf_vclock::Clock::try_current() else {
        return;
    };
    drain_admission(cm, tracer, actor, &clock);
}

/// What a policy tells the retry loop to do after an abort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CmDecision {
    /// Virtual-time units to wait before retrying (0 = retry at once).
    /// The caller applies this as one `Clock::advance` and records a
    /// `CmWait` event when nonzero.
    pub wait: u64,
    /// A box that just crossed the hotspot threshold: `(box_id,
    /// gate_deadline)`. Only set on the flagging transition; the caller
    /// records a `CmBoxFlagged` event.
    pub flagged: Option<(u64, u64)>,
}

/// An adaptive-serialization flip reported by
/// [`ContentionManager::note_future_attempt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveFlip {
    /// `true`: newly-submitted futures now serialize at submission
    /// (WO→SO); `false`: flipped back to submission-order-free (WO).
    pub to_strong: bool,
    /// Internal abort rate over the deciding window, in per-mille (the
    /// `AdaptiveFlip` trace event's payload).
    pub rate_per_mille: u64,
}

/// Counter snapshot exported through the `cm_*` gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CmStats {
    /// Nonzero waits handed out.
    pub waits: u64,
    /// Total virtual-time units of wait handed out.
    pub total_wait: u64,
    /// Boxes flagged for serialized admission (flag transitions, not
    /// currently-gated count).
    pub serialized_boxes: u64,
    /// Adaptive WO→SO (and back) flips.
    pub adaptive_flips: u64,
}

/// A contention-management policy: a deterministic state machine over
/// abort/commit/attempt notifications. Implementations must be cheap —
/// they sit on every retry path of both backends.
pub trait ContentionManager: Send + Sync {
    fn kind(&self) -> CmKind;

    /// Issues an actor token for a (re)starting transaction. Karma
    /// carries priority *across* an actor's retries, so callers reuse
    /// the token for every attempt of one logical transaction and report
    /// its retirement via [`ContentionManager::on_commit`].
    fn begin_txn(&self) -> u64;

    /// Consulted once per logical transaction before its first attempt:
    /// how long this actor should defer admission. Karma uses it to tax
    /// newcomers proportionally to their priority deficit against the
    /// richest live (aborting) transaction — loser-side waits alone
    /// cannot end starvation, because the aggressor that keeps winning
    /// never aborts and so never consults [`Self::on_abort`]. Every
    /// other policy admits immediately.
    fn admission_wait(&self, _actor: u64, _now: u64) -> u64 {
        0
    }

    /// Consulted after every conflict abort. `conflict_box` is the box
    /// the abort was attributed to (when the substrate knows it),
    /// `streak` the actor's consecutive-abort count (≥ 1), `work` the
    /// virtual cost of the wasted attempt, `now` the current virtual
    /// time.
    fn on_abort(
        &self,
        actor: u64,
        conflict_box: Option<u64>,
        streak: u32,
        work: u64,
        now: u64,
    ) -> CmDecision;

    /// The actor committed; its priority (if any) retires.
    fn on_commit(&self, actor: u64);

    /// Feeds one future-body attempt outcome to the adaptive policy.
    /// Returns a flip when the internal-abort hysteresis crosses.
    fn note_future_attempt(&self, _aborted: bool, _now: u64) -> Option<AdaptiveFlip> {
        None
    }

    /// Whether newly-beginning top-levels should serialize their futures
    /// at submission (the adaptive WO→SO flip). Sampled once per
    /// top-level at begin, so one transaction never mixes orderings.
    fn serialize_at_submission(&self) -> bool {
        false
    }

    fn stats(&self) -> CmStats;
}

/// Shared counter block used by every policy.
#[derive(Debug, Default)]
pub(crate) struct CmCounters {
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    waits: AtomicU64,
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    total_wait: AtomicU64,
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    serialized_boxes: AtomicU64,
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    adaptive_flips: AtomicU64,
}

impl CmCounters {
    pub(crate) fn count_wait(&self, wait: u64) {
        if wait > 0 {
            self.waits.fetch_add(1, Ordering::Relaxed);
            self.total_wait.fetch_add(wait, Ordering::Relaxed);
        }
    }

    pub(crate) fn count_flag(&self) {
        self.serialized_boxes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_flip(&self) {
        self.adaptive_flips.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> CmStats {
        CmStats {
            waits: self.waits.load(Ordering::Relaxed),
            total_wait: self.total_wait.load(Ordering::Relaxed),
            serialized_boxes: self.serialized_boxes.load(Ordering::Relaxed),
            adaptive_flips: self.adaptive_flips.load(Ordering::Relaxed),
        }
    }
}

/// Monotonic actor-token source shared by the policies.
// ordering(ActorSource): relaxed-rmw — ids only need uniqueness, not
// ordering; nothing is published through the counter.
#[derive(Debug, Default)]
pub(crate) struct ActorSource(AtomicU64);

impl ActorSource {
    pub(crate) fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

/// The default policy: retry immediately, keep no state. Exactly the
/// pre-CM behavior, so `WTF_CM=immediate` (or unset) is byte-identical
/// to runs of earlier revisions modulo the zero-valued `cm_*` gauges.
#[derive(Debug, Default)]
pub struct ImmediateCm {
    actors: ActorSource,
    counters: CmCounters,
}

impl ContentionManager for ImmediateCm {
    fn kind(&self) -> CmKind {
        CmKind::Immediate
    }

    fn begin_txn(&self) -> u64 {
        self.actors.next()
    }

    fn on_abort(
        &self,
        _actor: u64,
        _conflict_box: Option<u64>,
        _streak: u32,
        _work: u64,
        _now: u64,
    ) -> CmDecision {
        CmDecision::default()
    }

    fn on_commit(&self, _actor: u64) {}

    fn stats(&self) -> CmStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parses_env_values() {
        for kind in CmKind::ALL {
            assert_eq!(CmKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(CmKind::parse("nope"), None);
    }

    #[test]
    fn with_cm_pins_and_restores() {
        // The ambient kind is whatever `WTF_CM` says (CI pins it), so
        // override with something else and check it is restored after.
        let ambient = CmKind::from_env();
        let pinned = if ambient == CmKind::Karma {
            CmKind::Hotspot
        } else {
            CmKind::Karma
        };
        let seen = with_cm(pinned, CmKind::from_env);
        assert_eq!(seen, pinned);
        assert_eq!(CmKind::from_env(), ambient, "override restored");
    }

    #[test]
    fn build_round_trips_kind() {
        for kind in CmKind::ALL {
            assert_eq!(kind.build().kind(), kind);
        }
    }

    #[test]
    fn immediate_never_waits_or_serializes() {
        let cm = ImmediateCm::default();
        let a = cm.begin_txn();
        for streak in 1..64u32 {
            let d = cm.on_abort(a, Some(7), streak, 1_000, streak as u64 * 10);
            assert_eq!(d, CmDecision::default());
        }
        assert!(!cm.serialize_at_submission());
        assert_eq!(cm.note_future_attempt(true, 0), None);
        assert_eq!(cm.stats(), CmStats::default());
    }

    #[test]
    fn actor_tokens_are_unique() {
        let cm = ImmediateCm::default();
        let a = cm.begin_txn();
        let b = cm.begin_txn();
        assert_ne!(a, b);
    }
}
