//! Capped exponential backoff.
//!
//! The classic randomized-backoff manager, made deterministic: the wait
//! is a pure function of the actor's consecutive-abort streak,
//! `min(base << (streak - 1), cap)`, with no jitter. Under the virtual
//! clock randomized jitter buys nothing (the scheduler is deterministic
//! anyway) and would cost reproducibility.

use crate::{ActorSource, CmCounters, CmDecision, CmKind, CmStats, ContentionManager};

pub struct BackoffCm {
    base: u64,
    cap: u64,
    actors: ActorSource,
    counters: CmCounters,
}

impl BackoffCm {
    /// `base`: wait after the first abort; doubles per consecutive abort
    /// up to `cap`. The defaults are sized against the calibrated cost
    /// model (an STM commit is ~400 units, a Zipf task a few thousand):
    /// first retry backs off about one commit, a hopeless streak parks
    /// for about one task.
    pub fn new(base: u64, cap: u64) -> BackoffCm {
        assert!(base > 0 && cap >= base, "backoff needs 0 < base <= cap");
        BackoffCm {
            base,
            cap,
            actors: ActorSource::default(),
            counters: CmCounters::default(),
        }
    }

    /// The wait for a given streak — exposed so tests (and the proptest
    /// monotonicity oracle) can query the schedule directly.
    pub fn wait_for_streak(&self, streak: u32) -> u64 {
        if streak == 0 {
            return 0;
        }
        // Widen before shifting: `u64 << 63` silently drops the high
        // bits, which would wrap a huge streak back to a tiny wait.
        let shift = (streak - 1).min(63);
        ((self.base as u128) << shift).min(self.cap as u128) as u64
    }
}

impl Default for BackoffCm {
    fn default() -> BackoffCm {
        BackoffCm::new(400, 12_800)
    }
}

impl ContentionManager for BackoffCm {
    fn kind(&self) -> CmKind {
        CmKind::Backoff
    }

    fn begin_txn(&self) -> u64 {
        self.actors.next()
    }

    fn on_abort(
        &self,
        _actor: u64,
        _conflict_box: Option<u64>,
        streak: u32,
        _work: u64,
        _now: u64,
    ) -> CmDecision {
        let wait = self.wait_for_streak(streak);
        self.counters.count_wait(wait);
        CmDecision {
            wait,
            flagged: None,
        }
    }

    fn on_commit(&self, _actor: u64) {}

    fn stats(&self) -> CmStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_then_caps() {
        let cm = BackoffCm::new(100, 800);
        let waits: Vec<u64> = (1..=6).map(|s| cm.wait_for_streak(s)).collect();
        assert_eq!(waits, vec![100, 200, 400, 800, 800, 800]);
    }

    #[test]
    fn huge_streaks_do_not_overflow() {
        let cm = BackoffCm::new(400, 12_800);
        assert_eq!(cm.wait_for_streak(u32::MAX), 12_800);
        assert_eq!(cm.wait_for_streak(64), 12_800);
    }

    #[test]
    fn stats_accumulate_waits() {
        let cm = BackoffCm::new(100, 800);
        let a = cm.begin_txn();
        cm.on_abort(a, None, 1, 0, 0);
        cm.on_abort(a, None, 2, 0, 100);
        let s = cm.stats();
        assert_eq!(s.waits, 2);
        assert_eq!(s.total_wait, 300);
        assert_eq!(s.serialized_boxes, 0);
    }
}
