//! Hotspot: serialize admission to boxes with abort streaks.
//!
//! The tracer already attributes every conflict abort to a concrete
//! `BoxId`; this policy subscribes to that attribution (the
//! `conflict_box` argument of `on_abort`) and keeps a per-box
//! consecutive-abort streak. When a box's streak crosses the threshold
//! the box is *flagged*: for the next `window` virtual-time units,
//! transactions that abort on it are admitted one-at-a-time through a
//! striped gate — each loser is scheduled `slot` units after the
//! previous one (the same fetch-max free-at pattern `wtf-vclock` uses
//! for [`Resource`](wtf_vclock) horizons), so the pile-up drains as a
//! queue instead of a thundering herd. Gates always expire: any
//! consultation at `now >= deadline` drops the gate and resets the
//! box's streak, which the proptest release oracle pins down.
//!
//! State is striped 64 ways by the same Fibonacci hash TL2 uses for its
//! lock stripes, so the hot path contends no more than the substrate
//! it protects.

use crate::{ActorSource, CmCounters, CmDecision, CmKind, CmStats, ContentionManager};
use parking_lot::Mutex;
use std::collections::BTreeMap;

const STRIPES: usize = 64;

fn stripe_index(box_id: u64) -> usize {
    (box_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize
}

#[derive(Debug, Clone, Copy)]
struct Gate {
    /// Gate expires at this virtual time; consultations at or past it
    /// remove the gate.
    deadline: u64,
    /// Next admission slot (the fetch-max horizon).
    free_at: u64,
}

#[derive(Debug, Default)]
struct Stripe {
    /// Consecutive aborts charged to each box (reset on flag/expiry).
    streaks: BTreeMap<u64, u32>,
    gates: BTreeMap<u64, Gate>,
}

pub struct HotspotCm {
    /// Consecutive aborts on one box before it gets flagged.
    threshold: u32,
    /// How long a flagged box stays gated (virtual-time units).
    window: u64,
    /// Spacing between admissions through an open gate.
    slot: u64,
    stripes: [Mutex<Stripe>; STRIPES],
    actors: ActorSource,
    counters: CmCounters,
}

impl HotspotCm {
    pub fn new(threshold: u32, window: u64, slot: u64) -> HotspotCm {
        assert!(threshold > 0 && window > 0 && slot > 0);
        HotspotCm {
            threshold,
            window,
            slot,
            stripes: std::array::from_fn(|_| Mutex::new(Stripe::default())),
            actors: ActorSource::default(),
            counters: CmCounters::default(),
        }
    }

    /// Whether `box_id` is gated at `now` (expired gates are purged by
    /// the query, so the release oracle can poll this directly).
    pub fn is_gated(&self, box_id: u64, now: u64) -> bool {
        let mut stripe = self.stripes[stripe_index(box_id)].lock();
        match stripe.gates.get(&box_id) {
            Some(g) if now < g.deadline => true,
            Some(_) => {
                stripe.gates.remove(&box_id);
                stripe.streaks.remove(&box_id);
                false
            }
            None => false,
        }
    }
}

impl Default for HotspotCm {
    fn default() -> HotspotCm {
        HotspotCm::new(2, 30_000, 5_000)
    }
}

impl ContentionManager for HotspotCm {
    fn kind(&self) -> CmKind {
        CmKind::Hotspot
    }

    fn begin_txn(&self) -> u64 {
        self.actors.next()
    }

    fn on_abort(
        &self,
        _actor: u64,
        conflict_box: Option<u64>,
        _streak: u32,
        _work: u64,
        now: u64,
    ) -> CmDecision {
        let Some(box_id) = conflict_box else {
            return CmDecision::default();
        };
        let mut stripe = self.stripes[stripe_index(box_id)].lock();
        // Expired gate: release it and start the box's streak fresh.
        if let Some(g) = stripe.gates.get(&box_id).copied() {
            if now >= g.deadline {
                stripe.gates.remove(&box_id);
                stripe.streaks.remove(&box_id);
            }
        }
        if let Some(g) = stripe.gates.get_mut(&box_id) {
            // Gated: admit this loser at the next free slot.
            let t = g.free_at.max(now);
            g.free_at = t + self.slot;
            let wait = t - now;
            drop(stripe);
            self.counters.count_wait(wait);
            return CmDecision {
                wait,
                flagged: None,
            };
        }
        let streak = stripe.streaks.entry(box_id).or_insert(0);
        *streak += 1;
        if *streak < self.threshold {
            return CmDecision::default();
        }
        // Flag the box: open a gate and send this loser to its first slot.
        let deadline = now + self.window;
        stripe.gates.insert(
            box_id,
            Gate {
                deadline,
                free_at: now + 2 * self.slot,
            },
        );
        drop(stripe);
        self.counters.count_flag();
        self.counters.count_wait(self.slot);
        CmDecision {
            wait: self.slot,
            flagged: Some((box_id, deadline)),
        }
    }

    fn on_commit(&self, _actor: u64) {}

    fn stats(&self) -> CmStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streak_below_threshold_is_free() {
        let cm = HotspotCm::new(3, 1_000, 100);
        assert_eq!(cm.on_abort(0, Some(5), 1, 0, 0), CmDecision::default());
        assert_eq!(cm.on_abort(1, Some(5), 1, 0, 10), CmDecision::default());
        assert!(!cm.is_gated(5, 10));
    }

    #[test]
    fn third_abort_flags_and_gates_the_box() {
        let cm = HotspotCm::new(3, 1_000, 100);
        cm.on_abort(0, Some(5), 1, 0, 0);
        cm.on_abort(1, Some(5), 1, 0, 10);
        let d = cm.on_abort(2, Some(5), 1, 0, 20);
        assert_eq!(d.flagged, Some((5, 1_020)), "deadline = now + window");
        assert_eq!(d.wait, 100, "flagging loser takes the first slot");
        assert!(cm.is_gated(5, 20));
        // Next loser lands one slot later: free_at was 220.
        let d2 = cm.on_abort(3, Some(5), 1, 0, 30);
        assert_eq!(d2.flagged, None, "only the transition flags");
        assert_eq!(d2.wait, 190, "admitted at 220, now 30... 190");
        assert_eq!(cm.stats().serialized_boxes, 1);
    }

    #[test]
    fn gate_expires_at_deadline() {
        let cm = HotspotCm::new(1, 500, 100);
        let d = cm.on_abort(0, Some(9), 1, 0, 0);
        assert!(d.flagged.is_some());
        assert!(cm.is_gated(9, 499));
        assert!(!cm.is_gated(9, 500), "released exactly at the deadline");
        // Post-expiry abort starts a fresh streak, no immediate re-flag
        // needed at threshold 1 -> it re-flags (threshold is 1).
        let d2 = cm.on_abort(1, Some(9), 1, 0, 600);
        assert_eq!(d2.flagged, Some((9, 1_100)));
    }

    #[test]
    fn boxes_are_independent() {
        let cm = HotspotCm::new(2, 1_000, 100);
        cm.on_abort(0, Some(1), 1, 0, 0);
        cm.on_abort(0, Some(2), 1, 0, 0);
        assert!(!cm.is_gated(1, 1));
        assert!(!cm.is_gated(2, 1));
        let d = cm.on_abort(1, Some(1), 1, 0, 5);
        assert!(d.flagged.is_some(), "box 1 hit its own threshold");
        assert!(!cm.is_gated(2, 6), "box 2's streak untouched");
    }

    #[test]
    fn unattributed_aborts_are_ignored() {
        let cm = HotspotCm::new(1, 1_000, 100);
        assert_eq!(cm.on_abort(0, None, 5, 0, 0), CmDecision::default());
    }
}
