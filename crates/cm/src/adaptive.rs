//! Adaptive future serialization: flip WO futures to SO-at-submission
//! when the internal abort rate says optimism is losing.
//!
//! WO (submission-order-free) futures are the paper's throughput win,
//! but under a dense conflict storm their speculative attempts mostly
//! abort and re-execute — at that point serializing futures at
//! submission (the SO regime) wastes less work than optimism does. This
//! policy watches the stream of future-body attempt outcomes in windows
//! of `window` attempts and feeds "the window was storm-hot" into a
//! [`Hysteresis`] — the *same* trigger/recover state machine the
//! telemetry incident detector debounces abort storms with — so the
//! flip has onset/recovery edges rather than flapping per attempt.
//!
//! The flip itself is sampled once per top-level at `TopLevel::begin`
//! (`serialize_at_submission`), so a single transaction never mixes
//! orderings mid-flight. Abort waits delegate to a standard
//! [`BackoffCm`] schedule.

use crate::{AdaptiveFlip, BackoffCm, CmCounters, CmDecision, CmKind, CmStats, ContentionManager};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use wtf_telemetry::{Hysteresis, HysteresisEdge};

#[derive(Debug)]
struct FlipState {
    attempts: u32,
    aborts: u32,
    hys: Hysteresis,
}

pub struct AdaptiveCm {
    backoff: BackoffCm,
    /// Attempts per decision window.
    window: u32,
    /// Window abort rate (per-mille) at or above which it counts as hot.
    hot_per_mille: u64,
    state: Mutex<FlipState>,
    // ordering: release-store on a hysteresis flip publishes the mode
    // change; the acquire-load in `serialize_at_submission` pairs with
    // it, so a top-level that samples strong mode at begin also sees the
    // window state that justified the flip. (Downgraded from SeqCst:
    // nothing compares this flag against another atomic's order — each
    // transaction samples it exactly once.)
    strong: AtomicBool,
    counters: CmCounters,
}

impl AdaptiveCm {
    pub fn new(window: u32, hot_per_mille: u64, trigger: u32, recover: u32) -> AdaptiveCm {
        assert!(window > 0 && hot_per_mille <= 1000);
        AdaptiveCm {
            backoff: BackoffCm::default(),
            window,
            hot_per_mille,
            state: Mutex::new(FlipState {
                attempts: 0,
                aborts: 0,
                hys: Hysteresis::new(trigger, recover),
            }),
            strong: AtomicBool::new(false),
            counters: CmCounters::default(),
        }
    }
}

impl Default for AdaptiveCm {
    fn default() -> AdaptiveCm {
        AdaptiveCm::new(16, 500, 1, 2)
    }
}

impl ContentionManager for AdaptiveCm {
    fn kind(&self) -> CmKind {
        CmKind::Adaptive
    }

    fn begin_txn(&self) -> u64 {
        self.backoff.begin_txn()
    }

    fn on_abort(
        &self,
        actor: u64,
        conflict_box: Option<u64>,
        streak: u32,
        work: u64,
        now: u64,
    ) -> CmDecision {
        // Wait accounting lives in the inner backoff; `stats` merges it.
        self.backoff
            .on_abort(actor, conflict_box, streak, work, now)
    }

    fn on_commit(&self, actor: u64) {
        self.backoff.on_commit(actor);
    }

    fn note_future_attempt(&self, aborted: bool, _now: u64) -> Option<AdaptiveFlip> {
        let mut s = self.state.lock();
        s.attempts += 1;
        if aborted {
            s.aborts += 1;
        }
        if s.attempts < self.window {
            return None;
        }
        let rate_per_mille = s.aborts as u64 * 1000 / s.attempts as u64;
        s.attempts = 0;
        s.aborts = 0;
        let edge = s.hys.observe(rate_per_mille >= self.hot_per_mille);
        drop(s);
        let to_strong = match edge? {
            HysteresisEdge::Opened => true,
            HysteresisEdge::Recovered => false,
        };
        self.strong.store(to_strong, Ordering::Release);
        self.counters.count_flip();
        Some(AdaptiveFlip {
            to_strong,
            rate_per_mille,
        })
    }

    fn serialize_at_submission(&self) -> bool {
        self.strong.load(Ordering::Acquire)
    }

    fn stats(&self) -> CmStats {
        let mut s = self.counters.snapshot();
        let b = self.backoff.stats();
        s.waits = b.waits;
        s.total_wait = b.total_wait;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(cm: &AdaptiveCm, attempts: u32, aborted: bool) -> Option<AdaptiveFlip> {
        let mut last = None;
        for _ in 0..attempts {
            if let Some(f) = cm.note_future_attempt(aborted, 0) {
                last = Some(f);
            }
        }
        last
    }

    #[test]
    fn storm_flips_to_strong_calm_flips_back() {
        let cm = AdaptiveCm::new(8, 500, 1, 2);
        assert!(!cm.serialize_at_submission());
        // One hot window (all aborted) opens the flip.
        let flip = feed(&cm, 8, true).expect("hot window flips");
        assert!(flip.to_strong);
        assert_eq!(flip.rate_per_mille, 1000);
        assert!(cm.serialize_at_submission());
        // One calm window is not enough (recover = 2)...
        assert_eq!(feed(&cm, 8, false), None);
        assert!(cm.serialize_at_submission());
        // ...the second calm window flips back.
        let back = feed(&cm, 8, false).expect("calm windows recover");
        assert!(!back.to_strong);
        assert!(!cm.serialize_at_submission());
        assert_eq!(cm.stats().adaptive_flips, 2);
    }

    #[test]
    fn partial_windows_do_not_decide() {
        let cm = AdaptiveCm::new(16, 500, 1, 1);
        assert_eq!(feed(&cm, 15, true), None, "window not full yet");
        assert!(!cm.serialize_at_submission());
    }

    #[test]
    fn sub_threshold_rate_stays_weak() {
        let cm = AdaptiveCm::new(10, 500, 1, 1);
        for i in 0..10 {
            cm.note_future_attempt(i < 4, 0); // 400 per-mille < 500
        }
        assert!(!cm.serialize_at_submission());
        assert_eq!(cm.stats().adaptive_flips, 0);
    }
}
