//! Proptest oracles for the contention-manager state machines.
//!
//! The policies are pure state machines (no clock, no tracer), so the
//! oracles can drive them with arbitrary abort/commit streams and check
//! algebraic invariants directly:
//!
//! * backoff: the wait schedule is monotone non-decreasing in the
//!   streak until it hits the cap, and never exceeds the cap;
//! * karma: the ledger never underflows and is exactly conserved across
//!   commit handoffs (`bank + Σ live = accrued`);
//! * hotspot: every gate releases — no interleaving leaves a box
//!   permanently serialized.

use proptest::prelude::*;
use wtf_cm::{BackoffCm, ContentionManager, HotspotCm, KarmaCm};

proptest! {
    /// Backoff oracle: for an arbitrary (base, cap) tuning and abort
    /// streak, waits are monotone until the cap and capped thereafter.
    #[test]
    fn backoff_monotone_until_cap(
        input in (1u64..10_000, 0u64..100_000, 1u32..200)
    ) {
        let (base, extra, streak_len) = input;
        let cap = base + extra;
        let cm = BackoffCm::new(base, cap);
        let mut prev = 0u64;
        let mut capped = false;
        for streak in 1..=streak_len {
            let w = cm.wait_for_streak(streak);
            prop_assert!(w <= cap, "wait {w} exceeds cap {cap}");
            prop_assert!(w >= prev, "wait shrank: {prev} -> {w} at streak {streak}");
            if capped {
                prop_assert!(w == cap, "left the cap after reaching it: {w} != {cap}");
            }
            capped = w == cap;
            prev = w;
        }
        // The schedule reaches the cap within 64 doublings.
        prop_assert_eq!(cm.wait_for_streak(64.max(streak_len)), cap);
    }

    /// Karma oracle: arbitrary interleavings of aborts (crediting work)
    /// and commits (retiring actors) keep the ledger conserved and
    /// non-negative, and never hand out waits beyond the cap.
    #[test]
    fn karma_conserved_and_never_underflows(
        ops in proptest::collection::vec((0u64..6, 0u64..10_000), 1..120)
    ) {
        let cm = KarmaCm::new(5_000, 2);
        let actors: Vec<u64> = (0..6).map(|_| cm.begin_txn()).collect();
        for (who, work) in ops {
            let actor = actors[who as usize];
            if work % 5 == 0 {
                cm.on_commit(actor);
            } else {
                let d = cm.on_abort(actor, Some(work % 7), 1, work, work);
                prop_assert!(d.wait <= 5_000, "wait beyond cap");
            }
            let (bank, live, accrued) = cm.ledger_totals();
            prop_assert!(
                bank + live == accrued,
                "ledger must conserve karma (bank {bank} + live {live} != accrued {accrued})"
            );
        }
    }

    /// Karma priority-window oracle: with monotone time and arbitrary
    /// streaks (exercising the repeat-victim window grants), every wait
    /// and every admission hold stays within the cap, and the ledger
    /// stays conserved.
    #[test]
    fn karma_windows_bounded_under_monotone_time(
        ops in proptest::collection::vec((0u64..4, 1u32..5, 0u64..8_000), 1..120)
    ) {
        let cm = KarmaCm::new(5_000, 2);
        let actors: Vec<u64> = (0..4).map(|_| cm.begin_txn()).collect();
        let mut now = 0u64;
        for (who, streak, work) in ops {
            now += work / 4 + 1;
            let actor = actors[who as usize];
            if streak == 4 {
                cm.on_commit(actor);
            } else {
                let d = cm.on_abort(actor, None, streak, work, now);
                prop_assert!(d.wait <= 5_000, "abort wait beyond cap: {}", d.wait);
            }
            for &a in &actors {
                prop_assert!(
                    cm.admission_wait(a, now) <= 5_000,
                    "admission hold beyond cap"
                );
            }
            let (bank, live, accrued) = cm.ledger_totals();
            prop_assert!(bank + live == accrued, "window grants must not leak karma");
        }
    }

    /// Hotspot oracle: whatever abort schedule a box suffers, once time
    /// passes the last gate deadline the box is no longer serialized.
    #[test]
    fn hotspot_gate_always_releases(
        input in (1u32..5, 1u64..2_000, proptest::collection::vec((0u64..4, 0u64..500), 1..80))
    ) {
        let (threshold, window, aborts) = input;
        let cm = HotspotCm::new(threshold, window, 50);
        let mut now = 0u64;
        let mut last_deadline = 0u64;
        for (box_id, dt) in aborts {
            now += dt;
            let d = cm.on_abort(0, Some(box_id), 1, 100, now);
            if let Some((b, deadline)) = d.flagged {
                prop_assert_eq!(b, box_id);
                prop_assert!(deadline > now, "gate must extend into the future");
                last_deadline = last_deadline.max(deadline);
            }
            // A wait never parks the loser past the gate's own deadline
            // plus one slot per queued loser bound — sanity ceiling.
            prop_assert!(d.wait <= window + 50 * 80, "unbounded gate wait");
        }
        let after = last_deadline.max(now) + 1;
        for box_id in 0..4 {
            prop_assert!(
                !cm.is_gated(box_id, after),
                "box {} still gated at {} (last deadline {})",
                box_id,
                after,
                last_deadline
            );
        }
    }
}
