//! # wtf-telemetry — live sliding-window metrics for the WTF-TM runtime
//!
//! `wtf-trace` (PRs 2–3) answers *post-hoc* questions: end-of-run
//! histograms, hotspot reports, gauge series. ROADMAP items 3 (online
//! contention management) and 5 (`wtf-serve`) need *live* answers —
//! rolling abort rate, windowed latency percentiles, hotspot alarms a
//! policy can react to mid-run. This crate layers three pieces on the
//! trace substrate:
//!
//! * **[`TelemetryHub`]** — a sliding-window aggregator. Time is cut
//!   into fixed epochs; every closed epoch snapshots the tracer's
//!   cumulative histograms/conflict map/gauges, takes deltas, and feeds
//!   ring-of-epochs windows ([`wtf_trace::WindowedCounter`] /
//!   [`wtf_trace::WindowedHistogram`]). Rolling throughput, abort rate,
//!   per-box conflict rank and p50/p95/p99 latencies fall out of the
//!   window merges.
//! * **Prometheus exposition** ([`prom`]) — the windows render to the
//!   text exposition format, periodically written to `WTF_METRICS_FILE`
//!   (merge-on-export, so mvstm and tl2 phases of one run land in one
//!   file) and optionally served on a feature-gated localhost endpoint
//!   (`WTF_METRICS_ADDR`, feature `http`). Every series carries
//!   `backend` and `workload` labels.
//! * **Incident detection** ([`incident`]) — threshold/EWMA rules over
//!   the windows (abort storms, GC-horizon lag, queue-delay growth,
//!   watchdog stalls) emit structured `incidents.json` reports with
//!   onset/peak/recovery timestamps and implicated boxes/stripes,
//!   budgeted like the PR-3 doom-snapshot dumps.
//!
//! ## Determinism
//!
//! The hub has **no thread of its own**. It registers a tick hook on the
//! tracer ([`wtf_trace::Tracer::set_tick_hook`]) that runs from existing
//! runtime hooks (top-level begin/commit), so under the virtual clock
//! epoch boundaries, window contents, exposition files and incident
//! reports are all deterministic functions of the run's seeds. Telemetry
//! therefore requires tracing to be on (`WTF_TRACE>=1`): a disabled
//! tracer never fires its hooks.

pub mod incident;
pub mod prom;

#[cfg(feature = "http")]
pub mod http;

pub use incident::{
    EpochObservation, Hysteresis, HysteresisEdge, Incident, IncidentDetector, IncidentKind,
    IncidentTransition, Thresholds,
};
pub use prom::{PromDoc, PromFamily, PromSample, PromValue};

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use wtf_trace::hist::bucket_upper;
use wtf_trace::{EventKind, HistogramSnapshot, Json, Tracer, WindowedCounter, WindowedHistogram};

/// Default epoch length in clock units (virtual units or wall ns).
pub const DEFAULT_EPOCH_LEN: u64 = 50_000;
/// Default window size in epochs.
pub const DEFAULT_WINDOW_EPOCHS: usize = 8;
/// Default exposition export cadence, in epochs.
pub const DEFAULT_EXPORT_EVERY: u64 = 4;
/// Default incident budget (mirrors the PR-3 snapshot dump budget).
pub const DEFAULT_INCIDENT_BUDGET: u64 = 8;
/// Hard cap on retained per-epoch summaries in the run report.
pub const DEFAULT_SERIES_CAP: usize = 512;
/// How many hot boxes each epoch frame retains / the rolling rank shows.
pub const HOT_BOX_LIMIT: usize = 8;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_truthy(name: &str) -> bool {
    std::env::var(name)
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
        })
        .unwrap_or(false)
}

/// Where incident reports land by default: the PR-3 snapshot directory
/// (`WTF_SNAPSHOT_DIR`, default `results/snapshots`).
fn default_incidents_file() -> PathBuf {
    let dir = std::env::var("WTF_SNAPSHOT_DIR").unwrap_or_else(|_| "results/snapshots".to_string());
    PathBuf::from(dir).join("incidents.json")
}

/// Telemetry configuration. Built from the environment by
/// [`TelemetryConfig::from_env`] or directly by tests/`RunSpec`.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Clock units per epoch (`WTF_TELEMETRY_EPOCH`).
    pub epoch_len: u64,
    /// Window size in epochs (`WTF_TELEMETRY_EPOCHS`).
    pub window_epochs: usize,
    /// Exposition file path (`WTF_METRICS_FILE`); None = no file export.
    pub metrics_file: Option<PathBuf>,
    /// Export the exposition file every N closed epochs
    /// (`WTF_METRICS_EVERY`; a final export always happens at finish).
    pub export_every: u64,
    /// Localhost HTTP exposition address (`WTF_METRICS_ADDR`); served
    /// only when the crate is built with the `http` feature.
    pub metrics_addr: Option<String>,
    /// Incident report path (`WTF_INCIDENTS_FILE`, default
    /// `<snapshot_dir>/incidents.json`).
    pub incidents_file: PathBuf,
    /// Detector tuning.
    pub thresholds: Thresholds,
    /// Maximum incident opens recorded (`WTF_DUMP_LIMIT` — the same
    /// budget the doom-snapshot dumper uses).
    pub incident_budget: u64,
    /// Cap on per-epoch summaries retained in the run report.
    pub series_cap: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            epoch_len: DEFAULT_EPOCH_LEN,
            window_epochs: DEFAULT_WINDOW_EPOCHS,
            metrics_file: None,
            export_every: DEFAULT_EXPORT_EVERY,
            metrics_addr: None,
            incidents_file: default_incidents_file(),
            thresholds: Thresholds::default(),
            incident_budget: DEFAULT_INCIDENT_BUDGET,
            series_cap: DEFAULT_SERIES_CAP,
        }
    }
}

impl TelemetryConfig {
    /// `Some(config)` iff telemetry is requested: `WTF_TELEMETRY` is
    /// truthy, or `WTF_METRICS_FILE` / `WTF_METRICS_ADDR` is set.
    pub fn from_env() -> Option<TelemetryConfig> {
        let metrics_file = std::env::var("WTF_METRICS_FILE").ok().map(PathBuf::from);
        let metrics_addr = std::env::var("WTF_METRICS_ADDR").ok();
        if !env_truthy("WTF_TELEMETRY") && metrics_file.is_none() && metrics_addr.is_none() {
            return None;
        }
        Some(TelemetryConfig {
            epoch_len: env_u64("WTF_TELEMETRY_EPOCH", DEFAULT_EPOCH_LEN).max(1),
            window_epochs: env_u64("WTF_TELEMETRY_EPOCHS", DEFAULT_WINDOW_EPOCHS as u64).max(1)
                as usize,
            metrics_file,
            export_every: env_u64("WTF_METRICS_EVERY", DEFAULT_EXPORT_EVERY).max(1),
            metrics_addr,
            incidents_file: std::env::var("WTF_INCIDENTS_FILE")
                .map(PathBuf::from)
                .unwrap_or_else(|_| default_incidents_file()),
            thresholds: Thresholds::default(),
            incident_budget: env_u64("WTF_DUMP_LIMIT", DEFAULT_INCIDENT_BUDGET),
            series_cap: DEFAULT_SERIES_CAP,
        })
    }
}

/// Rolling (windowed) statistics at one epoch close.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RollingStats {
    /// Epochs actually retained in the window (≤ configured size).
    pub window_epochs: usize,
    pub commits: u64,
    pub conflicts: u64,
    /// conflicts / (commits + conflicts) over the window.
    pub abort_rate: f64,
    /// Commits per 1000 clock units over the window.
    pub throughput: f64,
    pub commit_p50: u64,
    pub commit_p95: u64,
    pub commit_p99: u64,
    pub validation_p95: u64,
    pub queue_p50: u64,
    pub queue_p95: u64,
    pub queue_p99: u64,
    /// Latest GC-horizon lag gauge reading (0 when not registered).
    pub gc_lag: u64,
    /// Latest pool queue depth gauge reading.
    pub queue_depth: u64,
    /// Hottest boxes in the window: `(box_id, conflicts)`, count
    /// descending then id ascending.
    pub hot_boxes: Vec<(u64, u64)>,
}

impl RollingStats {
    pub fn to_json(&self) -> Json {
        let hot: Vec<Json> = self
            .hot_boxes
            .iter()
            .map(|&(b, n)| Json::arr(vec![b.into(), n.into()]))
            .collect();
        Json::obj(vec![
            ("window_epochs", self.window_epochs.into()),
            ("commits", self.commits.into()),
            ("conflicts", self.conflicts.into()),
            ("abort_rate", self.abort_rate.into()),
            ("throughput", self.throughput.into()),
            ("commit_p50", self.commit_p50.into()),
            ("commit_p95", self.commit_p95.into()),
            ("commit_p99", self.commit_p99.into()),
            ("validation_p95", self.validation_p95.into()),
            ("queue_p50", self.queue_p50.into()),
            ("queue_p95", self.queue_p95.into()),
            ("queue_p99", self.queue_p99.into()),
            ("gc_lag", self.gc_lag.into()),
            ("queue_depth", self.queue_depth.into()),
            ("hot_boxes", Json::Arr(hot)),
        ])
    }
}

/// One closed epoch in the run report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochSummary {
    pub epoch: u64,
    pub end_ts: u64,
    /// This epoch's deltas (not the window).
    pub commits: u64,
    pub conflicts: u64,
    pub rolling: RollingStats,
}

impl EpochSummary {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("epoch", self.epoch.into()),
            ("end_ts", self.end_ts.into()),
            ("commits", self.commits.into()),
            ("conflicts", self.conflicts.into()),
            ("rolling", self.rolling.to_json()),
        ])
    }
}

/// The telemetry block a run report embeds. `Default` = disabled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummary {
    pub enabled: bool,
    pub backend: String,
    pub workload: String,
    pub epoch_len: u64,
    pub window_epochs: usize,
    pub epochs_closed: u64,
    /// Idle epochs fast-forwarded over (window-sized gaps).
    pub epochs_skipped: u64,
    pub commits_total: u64,
    pub conflicts_total: u64,
    /// Rolling stats at the final epoch close.
    pub rolling: RollingStats,
    pub incidents: Vec<Incident>,
    pub incidents_suppressed: u64,
    /// Per-epoch history (capped at the configured series cap).
    pub series: Vec<EpochSummary>,
}

impl TelemetrySummary {
    /// Deterministic JSON; a disabled summary collapses to
    /// `{"enabled":false}` so untelemetered baselines stay small.
    pub fn to_json(&self) -> Json {
        if !self.enabled {
            return Json::obj(vec![("enabled", false.into())]);
        }
        Json::obj(vec![
            ("enabled", true.into()),
            ("backend", Json::Str(self.backend.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("epoch_len", self.epoch_len.into()),
            ("window_epochs", self.window_epochs.into()),
            ("epochs_closed", self.epochs_closed.into()),
            ("epochs_skipped", self.epochs_skipped.into()),
            ("commits_total", self.commits_total.into()),
            ("conflicts_total", self.conflicts_total.into()),
            ("rolling", self.rolling.to_json()),
            (
                "incidents",
                Json::Arr(self.incidents.iter().map(|i| i.to_json()).collect()),
            ),
            ("incidents_suppressed", self.incidents_suppressed.into()),
            (
                "series",
                Json::Arr(self.series.iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }
}

/// Aggregation state, all behind one mutex (epoch closes are rare —
/// the per-hook fast path is a single atomic compare in
/// [`TelemetryHub::tick`]).
struct HubState {
    /// Next epoch index to close.
    epoch: u64,
    prev_commit: HistogramSnapshot,
    prev_validation: HistogramSnapshot,
    prev_queue: HistogramSnapshot,
    prev_boxes: BTreeMap<u64, u64>,
    prev_stripes: Vec<u64>,
    prev_commits_cum: u64,
    prev_watchdog: u64,
    commits: WindowedCounter,
    conflicts: WindowedCounter,
    commit_lat: WindowedHistogram,
    validation_lat: WindowedHistogram,
    queue_delay: WindowedHistogram,
    /// Per-epoch box conflict deltas (rank-capped per frame).
    box_frames: VecDeque<(u64, Vec<(u64, u64)>)>,
    /// Per-epoch stripe conflict deltas.
    stripe_frames: VecDeque<Vec<u64>>,
    detector: IncidentDetector,
    epochs_closed: u64,
    epochs_skipped: u64,
    commits_total: u64,
    conflicts_total: u64,
    last_rolling: RollingStats,
    series: Vec<EpochSummary>,
    finished: bool,
}

/// The sliding-window aggregator. Create with [`TelemetryHub::attach`];
/// drive from runtime hooks (automatic once attached); collect with
/// [`TelemetryHub::finish`].
pub struct TelemetryHub {
    cfg: TelemetryConfig,
    tracer: Arc<Tracer>,
    backend: String,
    workload: String,
    /// Fast-path gate: the next epoch boundary. Ticks below it return
    /// after one relaxed load + compare.
    // ordering: relaxed-store / relaxed-load — the state mutex orders
    // the real epoch bookkeeping; this is only the cheap gate in front
    // of it. relaxed-guard: a stale boundary read delays the epoch close
    // to the next tick, which re-checks under the lock.
    next_epoch_end: AtomicU64,
    state: Mutex<HubState>,
    #[cfg(feature = "http")]
    server: Mutex<Option<http::MetricsServer>>,
}

impl TelemetryHub {
    /// Builds a hub over `tracer` and installs its tick hook. The hub
    /// only aggregates while the tracer records (`WTF_TRACE>=1`): a
    /// disabled tracer never fires hooks. Returns the hub either way so
    /// `finish` still produces a (mostly empty) summary.
    pub fn attach(
        tracer: Arc<Tracer>,
        cfg: TelemetryConfig,
        backend: &str,
        workload: &str,
    ) -> Arc<TelemetryHub> {
        let window = cfg.window_epochs;
        let hub = Arc::new(TelemetryHub {
            next_epoch_end: AtomicU64::new(cfg.epoch_len),
            state: Mutex::new(HubState {
                epoch: 0,
                prev_commit: HistogramSnapshot::default(),
                prev_validation: HistogramSnapshot::default(),
                prev_queue: HistogramSnapshot::default(),
                prev_boxes: BTreeMap::new(),
                prev_stripes: Vec::new(),
                prev_commits_cum: 0,
                prev_watchdog: 0,
                commits: WindowedCounter::new(window),
                conflicts: WindowedCounter::new(window),
                commit_lat: WindowedHistogram::new(window),
                validation_lat: WindowedHistogram::new(window),
                queue_delay: WindowedHistogram::new(window),
                box_frames: VecDeque::new(),
                stripe_frames: VecDeque::new(),
                detector: IncidentDetector::new(cfg.thresholds.clone(), cfg.incident_budget),
                epochs_closed: 0,
                epochs_skipped: 0,
                commits_total: 0,
                conflicts_total: 0,
                last_rolling: RollingStats::default(),
                series: Vec::new(),
                finished: false,
            }),
            cfg,
            tracer: Arc::clone(&tracer),
            backend: backend.to_string(),
            workload: workload.to_string(),
            #[cfg(feature = "http")]
            server: Mutex::new(None),
        });
        let weak: Weak<TelemetryHub> = Arc::downgrade(&hub);
        if !tracer.set_tick_hook(move |ts| {
            if let Some(hub) = weak.upgrade() {
                hub.tick(ts);
            }
        }) {
            eprintln!("wtf-telemetry: tracer already has a tick hook; hub will not aggregate");
        }
        #[cfg(feature = "http")]
        if let Some(addr) = hub.cfg.metrics_addr.clone() {
            match http::MetricsServer::start(&addr) {
                Ok(server) => *hub.server.lock() = Some(server),
                Err(e) => eprintln!("wtf-telemetry: cannot serve on {addr}: {e}"),
            }
        }
        hub
    }

    pub fn backend(&self) -> &str {
        &self.backend
    }

    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The hook-driven heartbeat: closes every epoch whose boundary `ts`
    /// has passed. Cheap when no boundary passed (one atomic compare).
    pub fn tick(&self, ts: u64) {
        if ts < self.next_epoch_end.load(Ordering::Relaxed) {
            return;
        }
        let mut s = self.state.lock();
        if s.finished {
            return;
        }
        self.advance_to(&mut s, ts);
    }

    /// Closes epochs so that `state.epoch` catches up with `ts`.
    fn advance_to(&self, s: &mut HubState, ts: u64) {
        let target = ts / self.cfg.epoch_len;
        // Fast-forward over window-sized idle gaps: the skipped epochs
        // would all be empty frames, and the window only remembers the
        // last `window_epochs` anyway.
        let gap = target.saturating_sub(s.epoch);
        if gap > self.cfg.window_epochs as u64 {
            let skip = gap - self.cfg.window_epochs as u64;
            s.epochs_skipped += skip;
            s.epoch += skip;
        }
        while s.epoch < target {
            let end_ts = (s.epoch + 1) * self.cfg.epoch_len;
            self.close_epoch(s, end_ts);
        }
        self.next_epoch_end
            .store((s.epoch + 1) * self.cfg.epoch_len, Ordering::Relaxed);
    }

    /// Closes the epoch `state.epoch` at `end_ts`: snapshot, delta,
    /// window push, rule evaluation, periodic export.
    fn close_epoch(&self, s: &mut HubState, end_ts: u64) {
        let epoch = s.epoch;
        s.epoch += 1;
        s.epochs_closed += 1;

        // Cumulative snapshots → per-epoch deltas.
        let commit_cum = self.tracer.metrics.commit_latency.snapshot();
        let validation_cum = self.tracer.metrics.validation_latency.snapshot();
        let queue_cum = self.tracer.metrics.queue_delay.snapshot();
        let commit_delta = commit_cum.delta_since(&s.prev_commit);
        let validation_delta = validation_cum.delta_since(&s.prev_validation);
        let queue_delta = queue_cum.delta_since(&s.prev_queue);
        let commit_count_cum = commit_cum.count;
        s.prev_commit = commit_cum;
        s.prev_validation = validation_cum;
        s.prev_queue = queue_cum;

        // Gauges: one read of everything registered, by name.
        let gauges: BTreeMap<String, u64> = self.tracer.gauges.read_all().into_iter().collect();
        let gauge = |name: &str| gauges.get(name).copied().unwrap_or(0);

        // Commits: prefer the backend's cumulative commit gauge, fall
        // back to the commit-latency histogram count.
        let commits_cum = if gauges.contains_key("stm_commits") {
            gauge("stm_commits")
        } else {
            commit_count_cum
        };
        let commits_epoch = commits_cum.saturating_sub(s.prev_commits_cum);
        s.prev_commits_cum = commits_cum;
        s.commits_total = commits_cum;

        // Conflicts: per-box deltas out of the attribution map.
        let boxes_cum: BTreeMap<u64, u64> = self
            .tracer
            .conflicts
            .hotspots(usize::MAX)
            .into_iter()
            .collect();
        let mut box_delta: Vec<(u64, u64)> = boxes_cum
            .iter()
            .filter_map(|(&b, &n)| {
                let d = n.saturating_sub(s.prev_boxes.get(&b).copied().unwrap_or(0));
                (d > 0).then_some((b, d))
            })
            .collect();
        box_delta.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        box_delta.truncate(64);
        let conflicts_epoch: u64 = box_delta.iter().map(|&(_, d)| d).sum();
        s.prev_boxes = boxes_cum;
        s.conflicts_total += conflicts_epoch;

        let stripes_cum = self.tracer.conflicts.stripe_counts();
        let stripe_delta: Vec<u64> = stripes_cum
            .iter()
            .enumerate()
            .map(|(i, &n)| n.saturating_sub(s.prev_stripes.get(i).copied().unwrap_or(0)))
            .collect();
        s.prev_stripes = stripes_cum;

        let watchdog_cum = gauge("watchdog_stalls");
        let watchdog_epoch = watchdog_cum.saturating_sub(s.prev_watchdog);
        s.prev_watchdog = watchdog_cum;

        // Push the window frames.
        s.commits.push(epoch, commits_epoch);
        s.conflicts.push(epoch, conflicts_epoch);
        s.commit_lat.push(epoch, commit_delta);
        s.validation_lat.push(epoch, validation_delta);
        s.queue_delay.push(epoch, queue_delta);
        s.box_frames.push_back((epoch, box_delta));
        s.stripe_frames.push_back(stripe_delta);
        while s.box_frames.len() > self.cfg.window_epochs {
            s.box_frames.pop_front();
        }
        while s.stripe_frames.len() > self.cfg.window_epochs {
            s.stripe_frames.pop_front();
        }

        // Rolling statistics over the window.
        let w_commits = s.commits.window_sum();
        let w_conflicts = s.conflicts.window_sum();
        let attempts = w_commits + w_conflicts;
        let abort_rate = if attempts == 0 {
            0.0
        } else {
            w_conflicts as f64 / attempts as f64
        };
        let retained = s.commits.len();
        let span = (retained as u64).max(1) * self.cfg.epoch_len;
        let throughput = w_commits as f64 * 1000.0 / span as f64;
        let commit_roll = s.commit_lat.rolling();
        let validation_roll = s.validation_lat.rolling();
        let queue_roll = s.queue_delay.rolling();
        let mut window_boxes: BTreeMap<u64, u64> = BTreeMap::new();
        for (_, frame) in &s.box_frames {
            for &(b, n) in frame {
                *window_boxes.entry(b).or_insert(0) += n;
            }
        }
        let mut hot_boxes: Vec<(u64, u64)> = window_boxes.into_iter().collect();
        hot_boxes.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        hot_boxes.truncate(HOT_BOX_LIMIT);
        let mut window_stripes = vec![0u64; s.stripe_frames.front().map_or(0, |f| f.len())];
        for frame in &s.stripe_frames {
            for (i, &n) in frame.iter().enumerate() {
                if i < window_stripes.len() {
                    window_stripes[i] += n;
                }
            }
        }
        let hot_stripes: Vec<usize> = window_stripes
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, _)| i)
            .collect();

        let rolling = RollingStats {
            window_epochs: retained,
            commits: w_commits,
            conflicts: w_conflicts,
            abort_rate,
            throughput,
            commit_p50: commit_roll.percentile(50.0),
            commit_p95: commit_roll.percentile(95.0),
            commit_p99: commit_roll.percentile(99.0),
            validation_p95: validation_roll.percentile(95.0),
            queue_p50: queue_roll.percentile(50.0),
            queue_p95: queue_roll.percentile(95.0),
            queue_p99: queue_roll.percentile(99.0),
            gc_lag: gauge("stm_gc_horizon_lag"),
            queue_depth: gauge("pool_queue_depth"),
            hot_boxes: hot_boxes.clone(),
        };

        // Incident rules.
        let obs = EpochObservation {
            epoch,
            end_ts,
            window_commits: w_commits,
            window_conflicts: w_conflicts,
            abort_rate,
            gc_lag: rolling.gc_lag,
            queue_p95: rolling.queue_p95,
            watchdog_stalls: watchdog_epoch,
            hot_boxes,
            hot_stripes,
        };
        let transitions = s.detector.observe(&obs);

        // Event-stream breadcrumbs (deterministic under the vclock).
        self.tracer
            .record_at(end_ts, EventKind::TelemetryEpoch, epoch, retained as u64);
        for t in transitions {
            match t {
                IncidentTransition::Opened(kind) => {
                    self.tracer
                        .record_at(end_ts, EventKind::IncidentOnset, kind.code(), epoch)
                }
                IncidentTransition::Recovered(kind) => {
                    self.tracer
                        .record_at(end_ts, EventKind::IncidentEnd, kind.code(), epoch)
                }
            }
        }

        if s.series.len() < self.cfg.series_cap {
            s.series.push(EpochSummary {
                epoch,
                end_ts,
                commits: commits_epoch,
                conflicts: conflicts_epoch,
                rolling: rolling.clone(),
            });
        }
        s.last_rolling = rolling;

        if s.epochs_closed.is_multiple_of(self.cfg.export_every) {
            self.export(s);
        }
    }

    /// Renders the current windows as a Prometheus exposition document.
    fn render_prom(&self, s: &HubState) -> PromDoc {
        let base = vec![
            ("backend".to_string(), self.backend.clone()),
            ("workload".to_string(), self.workload.clone()),
        ];
        let labeled = |extra: Vec<(String, String)>| {
            let mut l = base.clone();
            l.extend(extra);
            l
        };
        let mut doc = PromDoc::default();
        let mut push = |name: &str, help: &str, kind: &str, samples: Vec<PromSample>| {
            let mut f = PromFamily::new(name, help, kind);
            f.samples = samples;
            doc.families.push(f);
        };

        push(
            "wtf_commits_total",
            "Committed transactions (cumulative).",
            "counter",
            vec![PromSample::new(
                "",
                base.clone(),
                PromValue::U64(s.commits_total),
            )],
        );
        push(
            "wtf_conflicts_total",
            "Conflict aborts charged to boxes (cumulative).",
            "counter",
            vec![PromSample::new(
                "",
                base.clone(),
                PromValue::U64(s.conflicts_total),
            )],
        );
        push(
            "wtf_epoch",
            "Telemetry epochs closed.",
            "gauge",
            vec![PromSample::new(
                "",
                base.clone(),
                PromValue::U64(s.epochs_closed),
            )],
        );
        let r = &s.last_rolling;
        push(
            "wtf_rolling_throughput",
            "Windowed commits per 1000 clock units.",
            "gauge",
            vec![PromSample::new(
                "",
                base.clone(),
                PromValue::F64(r.throughput),
            )],
        );
        push(
            "wtf_rolling_abort_rate",
            "Windowed conflicts / attempts.",
            "gauge",
            vec![PromSample::new(
                "",
                base.clone(),
                PromValue::F64(r.abort_rate),
            )],
        );
        let quantiles = [
            ("commit", "0.5", r.commit_p50),
            ("commit", "0.95", r.commit_p95),
            ("commit", "0.99", r.commit_p99),
            ("validation", "0.95", r.validation_p95),
            ("queue", "0.5", r.queue_p50),
            ("queue", "0.95", r.queue_p95),
            ("queue", "0.99", r.queue_p99),
        ];
        push(
            "wtf_rolling_latency",
            "Windowed latency quantiles by pipeline stage (clock units).",
            "gauge",
            quantiles
                .iter()
                .map(|&(stage, q, v)| {
                    PromSample::new(
                        "",
                        labeled(vec![
                            ("stage".to_string(), stage.to_string()),
                            ("quantile".to_string(), q.to_string()),
                        ]),
                        PromValue::U64(v),
                    )
                })
                .collect(),
        );
        for (name, help, roll) in [
            (
                "wtf_commit_latency",
                "Windowed commit latency (clock units).",
                s.commit_lat.rolling(),
            ),
            (
                "wtf_validation_latency",
                "Windowed validation latency (clock units).",
                s.validation_lat.rolling(),
            ),
            (
                "wtf_queue_delay",
                "Windowed future queue-to-start delay (clock units).",
                s.queue_delay.rolling(),
            ),
        ] {
            let mut samples = Vec::new();
            let mut cum = 0u64;
            for (i, &n) in roll.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cum += n;
                samples.push(PromSample::new(
                    "_bucket",
                    labeled(vec![("le".to_string(), bucket_upper(i).to_string())]),
                    PromValue::U64(cum),
                ));
            }
            samples.push(PromSample::new(
                "_bucket",
                labeled(vec![("le".to_string(), "+Inf".to_string())]),
                PromValue::U64(roll.count),
            ));
            samples.push(PromSample::new(
                "_sum",
                base.clone(),
                PromValue::U64(roll.sum),
            ));
            samples.push(PromSample::new(
                "_count",
                base.clone(),
                PromValue::U64(roll.count),
            ));
            push(name, help, "histogram", samples);
        }
        push(
            "wtf_hot_box_conflicts",
            "Windowed conflict count of the hottest boxes.",
            "gauge",
            r.hot_boxes
                .iter()
                .map(|&(b, n)| {
                    PromSample::new(
                        "",
                        labeled(vec![("box".to_string(), b.to_string())]),
                        PromValue::U64(n),
                    )
                })
                .collect(),
        );
        push(
            "wtf_runtime_gauge",
            "Latest reading of every registered runtime gauge.",
            "gauge",
            self.tracer
                .gauges
                .read_all()
                .into_iter()
                .map(|(name, v)| {
                    PromSample::new(
                        "",
                        labeled(vec![("name".to_string(), name)]),
                        PromValue::U64(v),
                    )
                })
                .collect(),
        );
        push(
            "wtf_incidents_total",
            "Incidents opened, by kind (cumulative).",
            "counter",
            incident::ALL_INCIDENT_KINDS
                .iter()
                .map(|&k| {
                    let n = s
                        .detector
                        .incidents()
                        .iter()
                        .filter(|i| i.kind == k)
                        .count();
                    PromSample::new(
                        "",
                        labeled(vec![("kind".to_string(), k.name().to_string())]),
                        PromValue::U64(n as u64),
                    )
                })
                .collect(),
        );
        doc.canonicalize();
        doc
    }

    /// Writes the exposition file (merge-on-export: series from other
    /// backend/workload label sets already in the file are preserved)
    /// and refreshes the HTTP body if serving.
    fn export(&self, s: &HubState) {
        let doc = self.render_prom(s);
        #[cfg(feature = "http")]
        if let Some(server) = self.server.lock().as_ref() {
            server.set_body(doc.render());
        }
        let Some(path) = &self.cfg.metrics_file else {
            return;
        };
        let mut merged = doc;
        if let Ok(old_text) = std::fs::read_to_string(path) {
            if let Ok(old) = PromDoc::parse(&old_text) {
                for old_fam in old.families {
                    let keep: Vec<PromSample> = old_fam
                        .samples
                        .into_iter()
                        .filter(|smp| {
                            smp.label("backend") != Some(&self.backend)
                                || smp.label("workload") != Some(&self.workload)
                        })
                        .collect();
                    if keep.is_empty() {
                        continue;
                    }
                    match merged.families.iter_mut().find(|f| f.name == old_fam.name) {
                        Some(f) => f.samples.extend(keep),
                        None => merged.families.push(PromFamily {
                            name: old_fam.name,
                            help: old_fam.help,
                            kind: old_fam.kind,
                            samples: keep,
                        }),
                    }
                }
            }
        }
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, merged.render()) {
            eprintln!("wtf-telemetry: cannot write {}: {e}", path.display());
        }
    }

    /// Summary of the current state (used by `finish`; also callable
    /// mid-run for debugging).
    fn summarize(&self, s: &HubState) -> TelemetrySummary {
        TelemetrySummary {
            enabled: true,
            backend: self.backend.clone(),
            workload: self.workload.clone(),
            epoch_len: self.cfg.epoch_len,
            window_epochs: self.cfg.window_epochs,
            epochs_closed: s.epochs_closed,
            epochs_skipped: s.epochs_skipped,
            commits_total: s.commits_total,
            conflicts_total: s.conflicts_total,
            rolling: s.last_rolling.clone(),
            incidents: s.detector.incidents().to_vec(),
            incidents_suppressed: s.detector.suppressed(),
            series: s.series.clone(),
        }
    }

    /// Ends aggregation at `ts`: closes any whole epochs the clock
    /// passed plus the final partial one, writes `incidents.json` (when
    /// there is anything to report) and the final exposition file, and
    /// returns the run's telemetry block. Idempotent; later calls return
    /// the frozen state.
    pub fn finish(&self, ts: u64) -> TelemetrySummary {
        let mut s = self.state.lock();
        if s.finished {
            return self.summarize(&s);
        }
        self.advance_to(&mut s, ts);
        // Close the trailing partial epoch so short runs (< one epoch)
        // still produce telemetry.
        if ts > s.epoch * self.cfg.epoch_len || s.epochs_closed == 0 {
            let end = ts.max(s.epoch * self.cfg.epoch_len + 1);
            self.close_epoch(&mut s, end);
        }
        s.finished = true;
        // Freeze the gate so stray late ticks cannot reopen epochs.
        self.next_epoch_end.store(u64::MAX, Ordering::Relaxed);

        if !s.detector.incidents().is_empty() || s.detector.suppressed() > 0 {
            let report = s.detector.report(
                &self.backend,
                &self.workload,
                self.cfg.epoch_len,
                self.cfg.window_epochs,
            );
            let path = &self.cfg.incidents_file;
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            if let Err(e) = std::fs::write(path, format!("{report}\n")) {
                eprintln!("wtf-telemetry: cannot write {}: {e}", path.display());
            }
        }
        self.export(&s);
        #[cfg(feature = "http")]
        self.server.lock().take();
        self.summarize(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtf_trace::TraceLevel;

    fn test_cfg(epoch_len: u64) -> TelemetryConfig {
        TelemetryConfig {
            epoch_len,
            window_epochs: 4,
            metrics_file: None,
            metrics_addr: None,
            // Point at a scratch path nothing writes to (no incidents in
            // these tests unless asserted).
            incidents_file: std::env::temp_dir().join("wtf-telemetry-test-incidents.json"),
            ..Default::default()
        }
    }

    #[test]
    fn epochs_close_on_ticks_and_windows_roll() {
        let tracer = Tracer::new(TraceLevel::Lifecycle);
        let hub = TelemetryHub::attach(Arc::clone(&tracer), test_cfg(100), "mvstm", "unit");
        assert!(tracer.tick_hook_installed());
        // Epoch 0: 2 commits, one conflict.
        tracer.metrics.commit_latency.record(10);
        tracer.metrics.commit_latency.record(20);
        tracer.charge_conflict(7);
        hub.tick(150); // closes epoch 0 at ts=100
                       // Epoch 1: 1 commit.
        tracer.metrics.commit_latency.record(30);
        hub.tick(250);
        let summary = hub.finish(260);
        assert!(summary.enabled);
        assert_eq!(summary.backend, "mvstm");
        assert_eq!(summary.epochs_closed, 3, "two whole + one partial");
        assert_eq!(summary.commits_total, 3);
        assert_eq!(summary.conflicts_total, 1);
        assert_eq!(summary.rolling.commits, 3, "window holds all epochs");
        assert_eq!(summary.rolling.hot_boxes, vec![(7, 1)]);
        assert_eq!(summary.series.len(), 3);
        assert_eq!(summary.series[0].commits, 2);
        assert_eq!(summary.series[0].end_ts, 100);
        assert_eq!(summary.series[1].commits, 1);
        // Epoch events landed in the trace.
        let lanes = tracer.lanes();
        let epochs: Vec<_> = lanes
            .iter()
            .flat_map(|(_, evs)| evs.iter())
            .filter(|e| e.kind == EventKind::TelemetryEpoch)
            .collect();
        assert_eq!(epochs.len(), 3);
        assert_eq!(epochs[0].ts, 100);
    }

    #[test]
    fn idle_gaps_fast_forward() {
        let tracer = Tracer::new(TraceLevel::Lifecycle);
        let hub = TelemetryHub::attach(Arc::clone(&tracer), test_cfg(10), "tl2", "unit");
        tracer.metrics.commit_latency.record(1);
        hub.tick(1_000_000); // 100k epochs elapsed; window is 4
        let summary = hub.finish(1_000_000);
        assert!(summary.epochs_skipped > 0, "gap was fast-forwarded");
        assert_eq!(
            summary.epochs_closed as usize, 4,
            "only the window's worth of epochs actually closed"
        );
        assert_eq!(summary.commits_total, 1);
    }

    #[test]
    fn finish_is_idempotent_and_freezes_ticks() {
        let tracer = Tracer::new(TraceLevel::Lifecycle);
        let hub = TelemetryHub::attach(Arc::clone(&tracer), test_cfg(100), "mvstm", "unit");
        tracer.metrics.commit_latency.record(5);
        let a = hub.finish(150);
        hub.tick(10_000); // late tick after finish: ignored
        let b = hub.finish(10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn disabled_summary_json_is_tiny() {
        let s = TelemetrySummary::default();
        assert_eq!(s.to_json().to_string(), r#"{"enabled":false}"#);
    }

    #[test]
    fn summary_json_round_trips() {
        let tracer = Tracer::new(TraceLevel::Lifecycle);
        let hub = TelemetryHub::attach(Arc::clone(&tracer), test_cfg(100), "mvstm", "unit");
        tracer.metrics.commit_latency.record(10);
        tracer.metrics.queue_delay.record(99);
        tracer.charge_conflict(3);
        let summary = hub.finish(120);
        let j = summary.to_json();
        let text = j.to_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
        assert_eq!(j.get("enabled"), Some(&Json::Bool(true)));
    }

    #[test]
    fn prom_export_merges_backends_in_one_file() {
        let dir = std::env::temp_dir().join(format!("wtf-telemetry-merge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("metrics.prom");
        for backend in ["mvstm", "tl2"] {
            let tracer = Tracer::new(TraceLevel::Lifecycle);
            let mut cfg = test_cfg(100);
            cfg.metrics_file = Some(path.clone());
            let hub = TelemetryHub::attach(Arc::clone(&tracer), cfg, backend, "unit");
            tracer.metrics.commit_latency.record(10);
            hub.finish(150);
        }
        let text = std::fs::read_to_string(&path).expect("exposition file written");
        let doc = PromDoc::parse(&text).expect("parses");
        assert_eq!(doc.label_values("backend"), vec!["mvstm", "tl2"]);
        assert_eq!(doc.render(), text, "file is canonical → round-trips");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_window_exposition_round_trips() {
        // A run that records nothing and finishes at ts=0: zero epochs
        // closed by ticks, so the exposition document is rendered from a
        // completely empty window (no commits, empty histograms, no hot
        // boxes, no gauges). The file must still parse and re-render byte
        // for byte — zero-sample families and all.
        let dir = std::env::temp_dir().join(format!("wtf-telemetry-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("metrics.prom");
        let tracer = Tracer::new(TraceLevel::Lifecycle);
        let mut cfg = test_cfg(100);
        cfg.metrics_file = Some(path.clone());
        let hub = TelemetryHub::attach(Arc::clone(&tracer), cfg, "mvstm", "empty");
        let summary = hub.finish(0);
        assert_eq!(summary.epochs_closed, 1, "only the forced partial epoch");
        assert_eq!(summary.commits_total, 0);
        let text = std::fs::read_to_string(&path).expect("exposition file written");
        let doc = PromDoc::parse(&text).expect("empty-window exposition parses");
        assert_eq!(doc.render(), text, "file is canonical → round-trips");
        // Families that aggregate per-entity series are present but
        // empty, rather than dropped (scrapers rely on stable families).
        let hot = doc.family("wtf_hot_box_conflicts").expect("family kept");
        assert!(hot.samples.is_empty());
        for name in ["wtf_commit_latency", "wtf_queue_delay"] {
            let fam = doc.family(name).expect("histogram family kept");
            assert!(
                fam.samples
                    .iter()
                    .any(|s| s.suffix == "_count" && s.value == PromValue::U64(0)),
                "{name} exposes an explicit zero count"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abort_storm_emits_incident_events_and_report() {
        let dir =
            std::env::temp_dir().join(format!("wtf-telemetry-incident-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tracer = Tracer::new(TraceLevel::Lifecycle);
        let mut cfg = test_cfg(100);
        cfg.incidents_file = dir.join("incidents.json");
        cfg.thresholds.min_window_attempts = 4;
        let hub = TelemetryHub::attach(Arc::clone(&tracer), cfg, "mvstm", "unit");
        // Storm epoch: all conflicts, no commits.
        for _ in 0..8 {
            tracer.charge_conflict(42);
        }
        hub.tick(150);
        // Calm epochs push the storm out of the 4-epoch window.
        for _ in 0..40 {
            tracer.metrics.commit_latency.record(5);
        }
        let summary = hub.finish(650);
        assert_eq!(summary.incidents.len(), 1);
        let inc = &summary.incidents[0];
        assert_eq!(inc.kind, IncidentKind::AbortStorm);
        assert_eq!(inc.onset_ts, 100);
        assert!(inc.recovery_ts.is_some(), "storm recovered");
        assert_eq!(inc.boxes, vec![42]);
        let report = std::fs::read_to_string(dir.join("incidents.json")).unwrap();
        let j = Json::parse(report.trim()).unwrap();
        assert_eq!(j.get("incidents").unwrap().as_arr().unwrap().len(), 1);
        let onset_events: Vec<_> = tracer
            .lanes()
            .iter()
            .flat_map(|(_, evs)| evs.clone())
            .filter(|e| e.kind == EventKind::IncidentOnset)
            .collect();
        assert_eq!(onset_events.len(), 1);
        assert_eq!(onset_events[0].a, IncidentKind::AbortStorm.code());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
