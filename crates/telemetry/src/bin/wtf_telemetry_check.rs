//! `wtf-telemetry-check` — CI validator for exposition artifacts.
//!
//! For every file argument: parse it with the crate's Prometheus-format
//! parser, verify the text is canonical (re-rendering reproduces the
//! file byte-for-byte — the round-trip guarantee the smoke job relies
//! on), and collect the `backend` label values seen. With
//! `--require-backends a,b` the union across all files must cover every
//! listed backend.
//!
//! Usage: `wtf-telemetry-check [--require-backends mvstm,tl2] FILE...`

use wtf_telemetry::PromDoc;

fn main() {
    let mut require: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require-backends" => {
                let Some(list) = args.next() else {
                    eprintln!("error: --require-backends needs a comma-separated list");
                    std::process::exit(2);
                };
                require.extend(list.split(',').map(|s| s.trim().to_string()));
            }
            "--help" | "-h" => {
                eprintln!("usage: wtf-telemetry-check [--require-backends a,b] FILE...");
                return;
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("error: no exposition files given");
        std::process::exit(2);
    }

    let mut failures = 0usize;
    let mut backends: Vec<String> = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {file}: cannot read: {e}");
                failures += 1;
                continue;
            }
        };
        let doc = match PromDoc::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("FAIL {file}: parse error: {e}");
                failures += 1;
                continue;
            }
        };
        if doc.render() != text {
            eprintln!("FAIL {file}: not canonical — render(parse(file)) differs from file");
            failures += 1;
            continue;
        }
        let file_backends = doc.label_values("backend");
        let samples: usize = doc.families.iter().map(|f| f.samples.len()).sum();
        println!(
            "OK   {file}: {} families, {} samples, backends [{}]",
            doc.families.len(),
            samples,
            file_backends.join(", ")
        );
        for b in file_backends {
            if !backends.contains(&b) {
                backends.push(b);
            }
        }
    }
    backends.sort();
    for want in &require {
        if !backends.contains(want) {
            eprintln!(
                "FAIL: required backend label {want:?} absent (saw [{}])",
                backends.join(", ")
            );
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} failure(s)");
        std::process::exit(1);
    }
}
