//! The incident detector: threshold/EWMA rules over the sliding windows.
//!
//! Each closed epoch feeds one [`EpochObservation`] to the detector; a
//! rule that stays triggered for `trigger_epochs` consecutive epochs
//! opens an [`Incident`], and `recover_epochs` consecutive calm epochs
//! closes it. Onset/peak/recovery timestamps are epoch-end timestamps,
//! so under the virtual clock the whole report is deterministic.
//!
//! Incident *opens* consume the same budget discipline as the PR-3 doom
//! snapshot dumps (`WTF_DUMP_LIMIT`): a pathological run emits a bounded
//! report plus a `suppressed` count, never an unbounded file.

use wtf_trace::Json;

/// What kind of incident. The `code` doubles as the event payload on
/// `IncidentOnset`/`IncidentEnd` trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// Rolling abort rate above threshold (with enough attempts).
    AbortStorm,
    /// GC horizon lagging the global clock beyond threshold.
    GcLag,
    /// Rolling queue-delay p95 blew past its EWMA baseline.
    QueueDelay,
    /// The stall watchdog fired during the epoch.
    WatchdogStall,
}

pub const ALL_INCIDENT_KINDS: [IncidentKind; 4] = [
    IncidentKind::AbortStorm,
    IncidentKind::GcLag,
    IncidentKind::QueueDelay,
    IncidentKind::WatchdogStall,
];

impl IncidentKind {
    pub fn name(self) -> &'static str {
        match self {
            IncidentKind::AbortStorm => "abort_storm",
            IncidentKind::GcLag => "gc_lag",
            IncidentKind::QueueDelay => "queue_delay",
            IncidentKind::WatchdogStall => "watchdog_stall",
        }
    }

    /// Stable numeric code for trace-event payloads.
    pub fn code(self) -> u64 {
        match self {
            IncidentKind::AbortStorm => 0,
            IncidentKind::GcLag => 1,
            IncidentKind::QueueDelay => 2,
            IncidentKind::WatchdogStall => 3,
        }
    }

    fn index(self) -> usize {
        self.code() as usize
    }
}

/// Detector tuning. Defaults are deliberately conservative; tests and
/// `RunSpec` override them directly.
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Rolling abort rate (conflicts / attempts) that opens an abort
    /// storm.
    pub abort_rate: f64,
    /// Minimum attempts in the window before the abort rate is trusted.
    pub min_window_attempts: u64,
    /// GC horizon lag (clock versions) that opens a GC-lag incident.
    pub gc_lag: u64,
    /// Queue-delay p95 must exceed `queue_p95_factor x EWMA` ...
    pub queue_p95_factor: f64,
    /// ... and this absolute floor, before a queue-delay incident opens.
    pub queue_p95_min: u64,
    /// Consecutive triggered epochs before an incident opens.
    pub trigger_epochs: u32,
    /// Consecutive calm epochs before an open incident recovers.
    pub recover_epochs: u32,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            abort_rate: 0.5,
            min_window_attempts: 16,
            gc_lag: 1024,
            queue_p95_factor: 4.0,
            queue_p95_min: 1000,
            trigger_epochs: 1,
            recover_epochs: 1,
        }
    }
}

/// One closed epoch's signal values, as the hub computed them.
#[derive(Debug, Clone, Default)]
pub struct EpochObservation {
    pub epoch: u64,
    /// Epoch-end timestamp (clock units).
    pub end_ts: u64,
    /// Rolling (windowed) commits + conflicts.
    pub window_commits: u64,
    pub window_conflicts: u64,
    /// Rolling abort rate over the window.
    pub abort_rate: f64,
    /// Latest GC-horizon lag gauge reading (0 when absent).
    pub gc_lag: u64,
    /// Rolling queue-delay p95.
    pub queue_p95: u64,
    /// Watchdog stalls recorded *during this epoch* (delta, not total).
    pub watchdog_stalls: u64,
    /// Hottest boxes in the window, `(box_id, conflicts)` rank order.
    pub hot_boxes: Vec<(u64, u64)>,
    /// Stripes with window conflicts, ascending index.
    pub hot_stripes: Vec<usize>,
}

/// One detected incident, open or recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    pub kind: IncidentKind,
    /// Rules that fired *while this incident was already open* and were
    /// folded into it instead of opening a second incident (deduplicated,
    /// kind-code order). A watchdog stall during an abort storm is one
    /// overlapping incident, not two.
    pub merged: Vec<IncidentKind>,
    pub onset_ts: u64,
    pub onset_epoch: u64,
    pub peak_ts: u64,
    pub peak_epoch: u64,
    /// The rule's severity metric at its peak (abort rate, lag, p95,
    /// stall count — per kind).
    pub peak_value: f64,
    /// `None` while still open (or open at run end).
    pub recovery_ts: Option<u64>,
    pub recovery_epoch: Option<u64>,
    /// Boxes implicated at onset (hotspot rank order).
    pub boxes: Vec<u64>,
    /// Stripes implicated at onset (ascending).
    pub stripes: Vec<usize>,
}

impl Incident {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str(self.kind.name().to_string())),
            (
                "merged",
                Json::Arr(
                    self.merged
                        .iter()
                        .map(|k| Json::Str(k.name().to_string()))
                        .collect(),
                ),
            ),
            ("onset", self.onset_ts.into()),
            ("onset_epoch", self.onset_epoch.into()),
            ("peak", self.peak_ts.into()),
            ("peak_epoch", self.peak_epoch.into()),
            ("peak_value", self.peak_value.into()),
            (
                "recovery",
                self.recovery_ts.map(Json::U64).unwrap_or(Json::Null),
            ),
            (
                "recovery_epoch",
                self.recovery_epoch.map(Json::U64).unwrap_or(Json::Null),
            ),
            (
                "boxes",
                Json::Arr(self.boxes.iter().map(|&b| b.into()).collect()),
            ),
            (
                "stripes",
                Json::Arr(self.stripes.iter().map(|&s| s.into()).collect()),
            ),
        ])
    }
}

/// Edge reported by [`Hysteresis::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HysteresisEdge {
    /// `trigger` consecutive hot observations while closed.
    Opened,
    /// `recover` consecutive calm observations while open.
    Recovered,
}

/// A reusable trigger/recover streak counter: `trigger` consecutive hot
/// observations open it, `recover` consecutive calm observations close
/// it. This is the state machine behind every incident-detector rule;
/// `wtf-cm`'s adaptive future-serialization policy reuses it for its
/// WO→SO flip decision, so both layers debounce identically.
#[derive(Debug, Clone, Copy)]
pub struct Hysteresis {
    trigger: u32,
    recover: u32,
    hot_streak: u32,
    calm_streak: u32,
    open: bool,
}

impl Hysteresis {
    pub fn new(trigger: u32, recover: u32) -> Hysteresis {
        Hysteresis {
            trigger: trigger.max(1),
            recover: recover.max(1),
            hot_streak: 0,
            calm_streak: 0,
            open: false,
        }
    }

    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Consecutive hot observations so far (meaningful while closed).
    pub fn hot_streak(&self) -> u32 {
        self.hot_streak
    }

    /// Feeds one observation; returns the edge it caused, if any.
    pub fn observe(&mut self, hot: bool) -> Option<HysteresisEdge> {
        if self.open {
            if hot {
                self.calm_streak = 0;
            } else {
                self.calm_streak += 1;
                if self.calm_streak >= self.recover {
                    self.open = false;
                    self.calm_streak = 0;
                    self.hot_streak = 0;
                    return Some(HysteresisEdge::Recovered);
                }
            }
        } else if hot {
            self.hot_streak += 1;
            if self.hot_streak >= self.trigger {
                self.open = true;
                self.hot_streak = 0;
                self.calm_streak = 0;
                return Some(HysteresisEdge::Opened);
            }
        } else {
            self.hot_streak = 0;
        }
        None
    }

    /// Forces the closed state without a `Recovered` edge (used when an
    /// open was vetoed, e.g. by the incident budget or a merge).
    pub fn force_closed(&mut self) {
        self.open = false;
        self.hot_streak = 0;
        self.calm_streak = 0;
    }
}

/// Per-rule detector state: the streak counter plus incident bookkeeping.
#[derive(Debug, Clone, Copy)]
struct RuleState {
    hys: Hysteresis,
    /// First epoch/ts of the current hot streak.
    streak_start: (u64, u64),
    /// Index into `incidents` of the open incident, if any.
    open: Option<usize>,
}

/// The detector: rule states, EWMA baseline, incident log, dump budget.
pub struct IncidentDetector {
    thresholds: Thresholds,
    rules: [RuleState; 4],
    /// EWMA of the queue-delay p95, updated only on calm epochs so an
    /// in-progress incident cannot drag its own baseline up.
    queue_ewma: Option<f64>,
    incidents: Vec<Incident>,
    budget: u64,
    suppressed: u64,
}

/// What `observe` reports back so the hub can emit trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentTransition {
    Opened(IncidentKind),
    Recovered(IncidentKind),
}

impl IncidentDetector {
    /// `budget`: maximum incident *opens* recorded (the PR-3 dump
    /// budget); further opens are counted as suppressed.
    pub fn new(thresholds: Thresholds, budget: u64) -> IncidentDetector {
        let rule = RuleState {
            hys: Hysteresis::new(thresholds.trigger_epochs, thresholds.recover_epochs),
            streak_start: (0, 0),
            open: None,
        };
        IncidentDetector {
            thresholds,
            rules: [rule; 4],
            queue_ewma: None,
            incidents: Vec::new(),
            budget,
            suppressed: 0,
        }
    }

    /// Severity of each rule for this observation, `None` = calm.
    fn severities(&self, obs: &EpochObservation) -> [Option<f64>; 4] {
        let t = &self.thresholds;
        let attempts = obs.window_commits + obs.window_conflicts;
        let storm = (attempts >= t.min_window_attempts && obs.abort_rate >= t.abort_rate)
            .then_some(obs.abort_rate);
        let gc = (t.gc_lag > 0 && obs.gc_lag >= t.gc_lag).then_some(obs.gc_lag as f64);
        let queue = match self.queue_ewma {
            Some(base) => (obs.queue_p95 >= t.queue_p95_min
                && obs.queue_p95 as f64 >= base * t.queue_p95_factor)
                .then_some(obs.queue_p95 as f64),
            // No baseline yet: only the absolute floor applies, scaled by
            // the factor so a cold start is not instantly an incident.
            None => (obs.queue_p95 as f64 >= t.queue_p95_min as f64 * t.queue_p95_factor)
                .then_some(obs.queue_p95 as f64),
        };
        let stall = (obs.watchdog_stalls > 0).then_some(obs.watchdog_stalls as f64);
        [storm, gc, queue, stall]
    }

    /// Feeds one closed epoch; returns the open/recover transitions it
    /// caused (deterministic order: kind code ascending).
    pub fn observe(&mut self, obs: &EpochObservation) -> Vec<IncidentTransition> {
        let severities = self.severities(obs);
        // Incident already open *before* this epoch's signals are applied.
        // A rule triggering while one is live merges into it rather than
        // opening a second, overlapping incident; rules triggering in the
        // same epoch with nothing live still open independently.
        let merge_into = self.rules.iter().find_map(|r| r.open);
        let mut transitions = Vec::new();
        for kind in ALL_INCIDENT_KINDS {
            let i = kind.index();
            let severity = severities[i];
            let rule = &mut self.rules[i];
            match rule.open {
                None => {
                    if severity.is_some() && rule.hys.hot_streak() == 0 {
                        rule.streak_start = (obs.epoch, obs.end_ts);
                    }
                    if rule.hys.observe(severity.is_some()) == Some(HysteresisEdge::Opened) {
                        let value = severity.expect("opened on a hot epoch");
                        match merge_into {
                            Some(idx) => {
                                rule.hys.force_closed();
                                let inc = &mut self.incidents[idx];
                                if inc.kind != kind && !inc.merged.contains(&kind) {
                                    inc.merged.push(kind);
                                }
                                if value > inc.peak_value {
                                    inc.peak_value = value;
                                    inc.peak_ts = obs.end_ts;
                                    inc.peak_epoch = obs.epoch;
                                }
                            }
                            None if self.budget == 0 => {
                                rule.hys.force_closed();
                                self.suppressed += 1;
                            }
                            None => {
                                self.budget -= 1;
                                rule.open = Some(self.incidents.len());
                                self.incidents.push(Incident {
                                    kind,
                                    merged: Vec::new(),
                                    onset_ts: rule.streak_start.1,
                                    onset_epoch: rule.streak_start.0,
                                    peak_ts: obs.end_ts,
                                    peak_epoch: obs.epoch,
                                    peak_value: value,
                                    recovery_ts: None,
                                    recovery_epoch: None,
                                    boxes: obs.hot_boxes.iter().map(|&(b, _)| b).collect(),
                                    stripes: obs.hot_stripes.clone(),
                                });
                                transitions.push(IncidentTransition::Opened(kind));
                            }
                        }
                    }
                }
                Some(idx) => {
                    let inc = &mut self.incidents[idx];
                    if let Some(value) = severity {
                        if value > inc.peak_value {
                            inc.peak_value = value;
                            inc.peak_ts = obs.end_ts;
                            inc.peak_epoch = obs.epoch;
                        }
                    }
                    if rule.hys.observe(severity.is_some()) == Some(HysteresisEdge::Recovered) {
                        inc.recovery_ts = Some(obs.end_ts);
                        inc.recovery_epoch = Some(obs.epoch);
                        rule.open = None;
                        transitions.push(IncidentTransition::Recovered(kind));
                    }
                }
            }
        }
        // Update the queue EWMA only when the queue rule is calm.
        if severities[IncidentKind::QueueDelay.index()].is_none() {
            let sample = obs.queue_p95 as f64;
            self.queue_ewma = Some(match self.queue_ewma {
                Some(prev) => 0.7 * prev + 0.3 * sample,
                None => sample,
            });
        }
        transitions
    }

    /// All incidents (open ones keep `recovery: None`).
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// The `incidents.json` document body.
    pub fn report(
        &self,
        backend: &str,
        workload: &str,
        epoch_len: u64,
        window_epochs: usize,
    ) -> Json {
        Json::obj(vec![
            ("backend", Json::Str(backend.to_string())),
            ("workload", Json::Str(workload.to_string())),
            (
                "window",
                Json::obj(vec![
                    ("epoch_len", epoch_len.into()),
                    ("epochs", window_epochs.into()),
                ]),
            ),
            (
                "incidents",
                Json::Arr(self.incidents.iter().map(|i| i.to_json()).collect()),
            ),
            ("suppressed", self.suppressed.into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm_obs(epoch: u64, rate: f64) -> EpochObservation {
        EpochObservation {
            epoch,
            end_ts: (epoch + 1) * 100,
            window_commits: 50,
            window_conflicts: 50,
            abort_rate: rate,
            hot_boxes: vec![(7, 40), (9, 10)],
            hot_stripes: vec![7, 9],
            ..Default::default()
        }
    }

    #[test]
    fn storm_opens_peaks_and_recovers() {
        let mut d = IncidentDetector::new(Thresholds::default(), 8);
        assert!(d.observe(&storm_obs(0, 0.1)).is_empty(), "calm epoch");
        assert_eq!(
            d.observe(&storm_obs(1, 0.6)),
            vec![IncidentTransition::Opened(IncidentKind::AbortStorm)]
        );
        assert!(d.observe(&storm_obs(2, 0.9)).is_empty(), "still open");
        assert_eq!(
            d.observe(&storm_obs(3, 0.1)),
            vec![IncidentTransition::Recovered(IncidentKind::AbortStorm)]
        );
        let incs = d.incidents();
        assert_eq!(incs.len(), 1);
        let inc = &incs[0];
        assert_eq!(inc.kind, IncidentKind::AbortStorm);
        assert_eq!((inc.onset_epoch, inc.onset_ts), (1, 200));
        assert_eq!((inc.peak_epoch, inc.peak_ts), (2, 300), "peak at 0.9");
        assert_eq!(inc.peak_value, 0.9);
        assert_eq!(inc.recovery_epoch, Some(3));
        assert_eq!(inc.recovery_ts, Some(400));
        assert_eq!(inc.boxes, vec![7, 9], "onset hotspots implicated");
        assert_eq!(inc.stripes, vec![7, 9]);
    }

    #[test]
    fn trigger_epochs_requires_consecutive_hot() {
        let mut d = IncidentDetector::new(
            Thresholds {
                trigger_epochs: 2,
                ..Default::default()
            },
            8,
        );
        assert!(d.observe(&storm_obs(0, 0.8)).is_empty(), "one hot epoch");
        assert!(d.observe(&storm_obs(1, 0.1)).is_empty(), "streak broken");
        assert!(d.observe(&storm_obs(2, 0.8)).is_empty());
        let t = d.observe(&storm_obs(3, 0.9));
        assert_eq!(
            t,
            vec![IncidentTransition::Opened(IncidentKind::AbortStorm)]
        );
        assert_eq!(d.incidents()[0].onset_epoch, 2, "onset at streak start");
    }

    #[test]
    fn min_attempts_gates_small_windows() {
        let mut d = IncidentDetector::new(Thresholds::default(), 8);
        let mut obs = storm_obs(0, 1.0);
        obs.window_commits = 2;
        obs.window_conflicts = 2;
        assert!(d.observe(&obs).is_empty(), "4 attempts < min 16");
    }

    #[test]
    fn budget_suppresses_opens() {
        let mut d = IncidentDetector::new(Thresholds::default(), 1);
        d.observe(&storm_obs(0, 0.9));
        d.observe(&storm_obs(1, 0.1)); // recover
        d.observe(&storm_obs(2, 0.9)); // second open: suppressed
        assert_eq!(d.incidents().len(), 1);
        assert_eq!(d.suppressed(), 1);
    }

    #[test]
    fn queue_ewma_baseline_does_not_self_inflate() {
        let t = Thresholds {
            queue_p95_min: 100,
            queue_p95_factor: 2.0,
            ..Default::default()
        };
        let mut d = IncidentDetector::new(t, 8);
        let obs = |epoch: u64, p95: u64| EpochObservation {
            epoch,
            end_ts: (epoch + 1) * 100,
            queue_p95: p95,
            ..Default::default()
        };
        // Establish a ~100 baseline.
        for e in 0..4 {
            assert!(d.observe(&obs(e, 100)).is_empty());
        }
        // 4x the baseline: opens, and the EWMA must not absorb it.
        assert_eq!(
            d.observe(&obs(4, 400)),
            vec![IncidentTransition::Opened(IncidentKind::QueueDelay)]
        );
        assert!(d.observe(&obs(5, 400)).is_empty(), "still open");
        // Back to baseline recovers — the 400s did not drag the EWMA up.
        assert_eq!(
            d.observe(&obs(6, 100)),
            vec![IncidentTransition::Recovered(IncidentKind::QueueDelay)]
        );
    }

    #[test]
    fn watchdog_and_gc_rules_fire_independently() {
        let mut d = IncidentDetector::new(Thresholds::default(), 8);
        let obs = EpochObservation {
            epoch: 0,
            end_ts: 100,
            gc_lag: 5000,
            watchdog_stalls: 2,
            ..Default::default()
        };
        let t = d.observe(&obs);
        assert_eq!(
            t,
            vec![
                IncidentTransition::Opened(IncidentKind::GcLag),
                IncidentTransition::Opened(IncidentKind::WatchdogStall),
            ]
        );
    }

    /// Regression: a watchdog stall firing *during* an open abort storm
    /// used to open a second incident. It now merges into the open one.
    #[test]
    fn watchdog_during_open_storm_merges_not_doubles() {
        let mut d = IncidentDetector::new(Thresholds::default(), 8);
        assert_eq!(
            d.observe(&storm_obs(0, 0.8)),
            vec![IncidentTransition::Opened(IncidentKind::AbortStorm)]
        );
        let mut obs = storm_obs(1, 0.9);
        obs.watchdog_stalls = 3;
        assert!(d.observe(&obs).is_empty(), "no second open");
        assert_eq!(d.incidents().len(), 1, "overlap merged into one incident");
        let inc = &d.incidents()[0];
        assert_eq!(inc.kind, IncidentKind::AbortStorm);
        assert_eq!(inc.merged, vec![IncidentKind::WatchdogStall]);
        assert_eq!(inc.peak_value, 3.0, "merged rule can still set the peak");
        assert_eq!(d.suppressed(), 0, "a merge is not a suppressed open");
        // Both signals calm: the one incident recovers once.
        assert_eq!(
            d.observe(&storm_obs(2, 0.1)),
            vec![IncidentTransition::Recovered(IncidentKind::AbortStorm)]
        );
        // A stall *after* recovery is its own incident again.
        let mut late = storm_obs(3, 0.1);
        late.watchdog_stalls = 1;
        assert_eq!(
            d.observe(&late),
            vec![IncidentTransition::Opened(IncidentKind::WatchdogStall)]
        );
        assert_eq!(d.incidents().len(), 2);
    }

    #[test]
    fn merged_kinds_deduplicate_across_epochs() {
        let mut d = IncidentDetector::new(Thresholds::default(), 8);
        d.observe(&storm_obs(0, 0.8));
        for e in 1..4 {
            let mut obs = storm_obs(e, 0.8);
            obs.watchdog_stalls = 1;
            d.observe(&obs);
        }
        assert_eq!(d.incidents().len(), 1);
        assert_eq!(
            d.incidents()[0].merged,
            vec![IncidentKind::WatchdogStall],
            "repeat overlaps record the kind once"
        );
    }

    #[test]
    fn hysteresis_debounces_and_recovers() {
        let mut h = Hysteresis::new(2, 2);
        assert_eq!(h.observe(true), None, "1 hot < trigger 2");
        assert_eq!(h.observe(false), None, "streak broken");
        assert_eq!(h.observe(true), None);
        assert_eq!(h.observe(true), Some(HysteresisEdge::Opened));
        assert!(h.is_open());
        assert_eq!(h.observe(false), None, "1 calm < recover 2");
        assert_eq!(h.observe(true), None, "calm streak broken");
        assert_eq!(h.observe(false), None);
        assert_eq!(h.observe(false), Some(HysteresisEdge::Recovered));
        assert!(!h.is_open());
    }

    #[test]
    fn report_json_round_trips() {
        let mut d = IncidentDetector::new(Thresholds::default(), 8);
        d.observe(&storm_obs(0, 0.9));
        let j = d.report("mvstm", "zipf", 100, 8);
        let text = j.to_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
        assert_eq!(j.get("backend").unwrap().as_str(), Some("mvstm"));
        let incs = j.get("incidents").unwrap().as_arr().unwrap();
        assert_eq!(incs.len(), 1);
        assert_eq!(incs[0].get("recovery"), Some(&Json::Null), "still open");
    }
}
