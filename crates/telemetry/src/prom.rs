//! Hand-rolled Prometheus text exposition format: a canonical writer
//! plus a parser, in the spirit of `wtf_trace::json` (the workspace
//! builds fully offline, and CI round-trips every artifact it emits).
//!
//! The subset implemented is exactly what the exposition files need:
//! `# HELP` / `# TYPE` comment lines and `name{labels} value` samples
//! with counter, gauge, histogram and untyped families. Rendering is
//! **canonical** — families sorted by name, samples sorted by (suffix,
//! label rendering) — so two virtual-clock runs of the same workload
//! produce byte-identical files, and `write(parse(text)) == text` holds
//! for anything this module wrote (the CI smoke job's check).

use std::fmt::Write as _;

/// A sample's value. `f64` renders through Rust's shortest-roundtrip
/// `Display` (deterministic); `Inf` is the `+Inf` histogram bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PromValue {
    U64(u64),
    F64(f64),
    Inf,
}

impl PromValue {
    fn render(&self) -> String {
        match self {
            PromValue::U64(v) => v.to_string(),
            PromValue::F64(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    // Keep integral floats distinguishable from U64 on
                    // re-parse by rendering an explicit decimal point.
                    format!("{v:.1}")
                } else {
                    v.to_string()
                }
            }
            PromValue::Inf => "+Inf".to_string(),
        }
    }

    fn parse(s: &str) -> Result<PromValue, String> {
        match s {
            "+Inf" | "Inf" => Ok(PromValue::Inf),
            _ if s.contains(['.', 'e', 'E']) => s
                .parse::<f64>()
                .map(PromValue::F64)
                .map_err(|e| format!("bad float {s:?}: {e}")),
            _ => s
                .parse::<u64>()
                .map(PromValue::U64)
                .map_err(|e| format!("bad integer {s:?}: {e}")),
        }
    }
}

/// One exposition line: `<family><suffix>{<labels>} <value>`.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Appended to the family name (`""`, `"_bucket"`, `"_sum"`,
    /// `"_count"`).
    pub suffix: String,
    /// Label pairs; kept sorted by key for canonical rendering.
    pub labels: Vec<(String, String)>,
    pub value: PromValue,
}

impl PromSample {
    pub fn new(suffix: &str, labels: Vec<(String, String)>, value: PromValue) -> PromSample {
        let mut s = PromSample {
            suffix: suffix.to_string(),
            labels,
            value,
        };
        s.labels.sort();
        s
    }

    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn label_block(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        }
        out.push('}');
        out
    }
}

/// A metric family: `# HELP`/`# TYPE` header plus its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct PromFamily {
    pub name: String,
    pub help: String,
    /// `counter`, `gauge`, `histogram` or `untyped`.
    pub kind: String,
    pub samples: Vec<PromSample>,
}

impl PromFamily {
    pub fn new(name: &str, help: &str, kind: &str) -> PromFamily {
        PromFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind: kind.to_string(),
            samples: Vec::new(),
        }
    }
}

/// A whole exposition document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PromDoc {
    pub families: Vec<PromFamily>,
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

impl PromDoc {
    /// Canonicalizes in place: families sorted by name, samples sorted
    /// by (suffix, rendered labels). Writing a canonical doc and parsing
    /// it back yields the same canonical doc.
    pub fn canonicalize(&mut self) {
        self.families.sort_by(|a, b| a.name.cmp(&b.name));
        for f in &mut self.families {
            f.samples
                .sort_by_key(|s| (s.suffix.clone(), s.label_block()));
        }
    }

    /// The family named `name`, if present.
    pub fn family(&self, name: &str) -> Option<&PromFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// All distinct values of `label` across every sample, sorted.
    pub fn label_values(&self, label: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for f in &self.families {
            for s in &f.samples {
                if let Some(v) = s.label(label) {
                    if !out.iter().any(|x| x == v) {
                        out.push(v.to_string());
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Renders the document in canonical exposition text format.
    pub fn render(&self) -> String {
        let mut doc = self.clone();
        doc.canonicalize();
        let mut out = String::new();
        for f in &doc.families {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind);
            for s in &f.samples {
                let _ = writeln!(
                    out,
                    "{}{}{} {}",
                    f.name,
                    s.suffix,
                    s.label_block(),
                    s.value.render()
                );
            }
        }
        out
    }

    /// Parses exposition text. Requires every sample line to follow a
    /// `# TYPE` header whose family name prefixes the sample name (the
    /// shape this module writes; arbitrary scrapes from other systems
    /// are out of scope).
    pub fn parse(text: &str) -> Result<PromDoc, String> {
        let mut doc = PromDoc::default();
        let mut pending_help: Option<(String, String)> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("line {}: {}", lineno + 1, msg);
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest
                    .split_once(' ')
                    .map(|(n, h)| (n.to_string(), h.to_string()))
                    .unwrap_or_else(|| (rest.to_string(), String::new()));
                pending_help = Some((name, help));
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest
                    .split_once(' ')
                    .ok_or_else(|| err("malformed TYPE line".into()))?;
                let help = match pending_help.take() {
                    Some((hn, h)) if hn == name => h,
                    _ => String::new(),
                };
                doc.families.push(PromFamily::new(name, &help, kind));
            } else if line.starts_with('#') {
                continue; // other comments
            } else {
                let fam = doc
                    .families
                    .last_mut()
                    .ok_or_else(|| err("sample before any TYPE header".into()))?;
                let sample = parse_sample(line, &fam.name).map_err(err)?;
                fam.samples.push(sample);
            }
        }
        Ok(doc)
    }
}

fn parse_sample(line: &str, family: &str) -> Result<PromSample, String> {
    let rest = line
        .strip_prefix(family)
        .ok_or_else(|| format!("sample {line:?} does not extend family {family:?}"))?;
    // rest = <suffix>[{labels}] <value>
    let (name_part, value_part) = match rest.find('{') {
        Some(brace) => {
            let close = rest
                .rfind('}')
                .ok_or_else(|| "unterminated label block".to_string())?;
            let after = rest[close + 1..].trim();
            ((&rest[..brace], Some(&rest[brace + 1..close])), after)
        }
        None => {
            let sp = rest
                .find(' ')
                .ok_or_else(|| "sample line missing value".to_string())?;
            ((&rest[..sp], None), rest[sp + 1..].trim())
        }
    };
    let (suffix, labels_src) = name_part;
    let mut labels = Vec::new();
    if let Some(src) = labels_src {
        for pair in split_labels(src)? {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("malformed label {pair:?}"))?;
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted label value in {pair:?}"))?;
            labels.push((k.to_string(), unescape_label(v)));
        }
    }
    Ok(PromSample::new(
        suffix,
        labels,
        PromValue::parse(value_part)?,
    ))
}

/// Splits a label block on commas that are not inside quoted values.
fn split_labels(src: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in src.chars() {
        if escaped {
            cur.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                cur.push(c);
                escaped = true;
            }
            '"' => {
                cur.push(c);
                in_quotes = !in_quotes;
            }
            ',' if !in_quotes => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(c),
        }
    }
    if in_quotes {
        return Err("unterminated quote in label block".into());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> PromDoc {
        let mut fam = PromFamily::new("wtf_commits_total", "Committed top-levels.", "counter");
        fam.samples.push(PromSample::new(
            "",
            vec![
                ("backend".into(), "mvstm".into()),
                ("workload".into(), "zipf".into()),
            ],
            PromValue::U64(42),
        ));
        fam.samples.push(PromSample::new(
            "",
            vec![
                ("backend".into(), "tl2".into()),
                ("workload".into(), "zipf".into()),
            ],
            PromValue::U64(17),
        ));
        let mut hist =
            PromFamily::new("wtf_commit_latency", "Rolling commit latency.", "histogram");
        hist.samples.push(PromSample::new(
            "_bucket",
            vec![
                ("backend".into(), "mvstm".into()),
                ("le".into(), "15".into()),
            ],
            PromValue::U64(40),
        ));
        hist.samples.push(PromSample::new(
            "_bucket",
            vec![
                ("backend".into(), "mvstm".into()),
                ("le".into(), "+Inf".into()),
            ],
            PromValue::U64(42),
        ));
        hist.samples.push(PromSample::new(
            "_sum",
            vec![("backend".into(), "mvstm".into())],
            PromValue::U64(512),
        ));
        hist.samples.push(PromSample::new(
            "_count",
            vec![("backend".into(), "mvstm".into())],
            PromValue::U64(42),
        ));
        let mut rate = PromFamily::new("wtf_rolling_abort_rate", "Rolling abort rate.", "gauge");
        rate.samples.push(PromSample::new(
            "",
            vec![("backend".into(), "mvstm".into())],
            PromValue::F64(0.25),
        ));
        PromDoc {
            families: vec![fam, hist, rate],
        }
    }

    #[test]
    fn render_parse_round_trips_canonically() {
        let text = doc().render();
        let parsed = PromDoc::parse(&text).expect("parses");
        assert_eq!(parsed.render(), text, "write(parse(write(doc))) stable");
        // Canonical: families sorted by name.
        let names: Vec<&str> = parsed.families.iter().map(|f| f.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn label_values_collects_backends() {
        assert_eq!(doc().label_values("backend"), vec!["mvstm", "tl2"]);
        assert_eq!(doc().label_values("workload"), vec!["zipf"]);
    }

    #[test]
    fn float_values_stay_floats() {
        let text = doc().render();
        assert!(text.contains("wtf_rolling_abort_rate{backend=\"mvstm\"} 0.25"));
        let whole = PromValue::F64(3.0).render();
        assert_eq!(whole, "3.0", "integral floats keep a decimal point");
        assert_eq!(PromValue::parse("3.0").unwrap(), PromValue::F64(3.0));
        assert_eq!(PromValue::parse("3").unwrap(), PromValue::U64(3));
        assert_eq!(PromValue::parse("+Inf").unwrap(), PromValue::Inf);
    }

    #[test]
    fn label_escaping_survives_round_trip() {
        let mut fam = PromFamily::new("wtf_test", "h", "gauge");
        fam.samples.push(PromSample::new(
            "",
            vec![("name".into(), "we\"ird\\label\nx".into())],
            PromValue::U64(1),
        ));
        let d = PromDoc {
            families: vec![fam],
        };
        let text = d.render();
        let parsed = PromDoc::parse(&text).unwrap();
        assert_eq!(
            parsed.families[0].samples[0].label("name"),
            Some("we\"ird\\label\nx")
        );
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PromDoc::parse("wtf_x 1").is_err(), "sample before TYPE");
        assert!(PromDoc::parse("# TYPE wtf_x gauge\nwtf_x{a=\"1} 1").is_err());
        assert!(PromDoc::parse("# TYPE wtf_x gauge\nwtf_x nope").is_err());
    }

    #[test]
    fn merge_by_dropping_our_labels() {
        // The hub's merge-on-export: drop samples matching our label set,
        // keep the rest. Modeled here to pin the helper behavior.
        let mut d = doc();
        for f in &mut d.families {
            f.samples.retain(|s| s.label("backend") != Some("mvstm"));
        }
        assert_eq!(d.label_values("backend"), vec!["tl2"]);
    }
}
