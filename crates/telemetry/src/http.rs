//! Optional localhost HTTP exposition endpoint (feature `http`).
//!
//! A real Prometheus server scrapes over HTTP, so `WTF_METRICS_ADDR`
//! gets a minimal single-threaded responder: every connection receives
//! the latest rendered exposition body, whatever it asked for. The
//! serving thread only *reads* pre-rendered strings — it never touches
//! runtime state — so determinism of the run itself is unaffected; it is
//! still feature-gated (off by default) because benchmark runs should
//! not carry an extra thread at all.

use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The serving thread's handle. Dropping it stops the thread.
pub struct MetricsServer {
    // ordering: relaxed-store / relaxed-load — pure quit flag; the join
    // in `shutdown` provides the real synchronization. relaxed-guard:
    // the serve loop only polls whether to exit, no data rides on the
    // flag.
    stop: Arc<AtomicBool>,
    body: Arc<Mutex<String>>,
    addr: SocketAddr,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, or port 0 for an ephemeral
    /// port) and starts serving the current body.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let body = Arc::new(Mutex::new(String::new()));
        let handle = {
            let stop = Arc::clone(&stop);
            let body = Arc::clone(&body);
            std::thread::Builder::new()
                .name("wtf-metrics-http".into())
                .spawn(move || serve_loop(listener, stop, body))?
        };
        Ok(MetricsServer {
            stop,
            body,
            addr: local,
            handle: Some(handle),
        })
    }

    /// Replaces the served exposition body.
    pub fn set_body(&self, text: String) {
        *self.body.lock() = text;
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_loop(listener: TcpListener, stop: Arc<AtomicBool>, body: Arc<Mutex<String>>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut conn, _)) => {
                // Drain whatever request line arrived; the response is
                // the same either way.
                let _ = conn.set_read_timeout(Some(Duration::from_millis(100)));
                let mut buf = [0u8; 1024];
                let _ = conn.read(&mut buf);
                let text = body.lock().clone();
                let response = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    text.len(),
                    text
                );
                let _ = conn.write_all(response.as_bytes());
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    #[test]
    fn serves_current_body_over_http() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        server.set_body("wtf_epoch{backend=\"mvstm\"} 3\n".to_string());
        let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
        conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("wtf_epoch{backend=\"mvstm\"} 3"));
    }
}
