//! # transactional-futures
//!
//! A Rust implementation of **transactional futures** — futures whose
//! bodies run as atomic sub-transactions of a software transactional
//! memory — reproducing *“Investigating the Semantics of Futures in
//! Transactional Memory Systems”* (PPoPP 2021).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`tm`] (`wtf-core`) — the WTF-TM runtime: [`FutureTm`],
//!   [`TxCtx`], [`TxFuture`], the four semantics (WO/SO × LAC/GAC);
//! * [`stm`] (`wtf-mvstm`) — the multi-versioned STM substrate
//!   (JVSTM-style versioned boxes);
//! * [`backend`] (`wtf-backend`) — the substrate abstraction:
//!   [`BackendKind`] selects between mvstm and the single-version TL2
//!   backend (`wtf-tl2`), at runtime via `WTF_BACKEND=tl2`;
//! * [`fsg`] (`wtf-fsg`) — the Future Serialization Graph formalism:
//!   histories, polygraphs, acceptance checking;
//! * [`clock`] (`wtf-vclock`) — deterministic virtual-time execution;
//! * [`pool`] (`wtf-taskpool`) — the clock-aware worker pool;
//! * [`trace`] (`wtf-trace`) — observability: lock-free event tracing,
//!   latency histograms, abort attribution, JSON/Perfetto exporters
//!   (enable with `WTF_TRACE=1`);
//! * [`workloads`] (`wtf-workloads`) — the paper's evaluation workloads.
//!
//! ## Quickstart
//!
//! ```
//! use transactional_futures::{FutureTm, Semantics};
//!
//! let tm = FutureTm::new(Semantics::WO_GAC);
//! let balance = tm.new_vbox(100i64);
//!
//! let (before, after) = tm
//!     .atomic(|ctx| {
//!         let before = ctx.read(&balance)?;
//!         let b = balance.clone();
//!         // An interest computation runs as a transactional future,
//!         // atomically isolated from the rest of this transaction.
//!         let interest = ctx.submit(move |c| {
//!             let v = c.read(&b)?;
//!             Ok(v / 10)
//!         })?;
//!         let delta = ctx.evaluate(&interest)?;
//!         ctx.write(&balance, before + delta)?;
//!         ctx.read(&balance).map(|after| (before, after))
//!     })
//!     .unwrap();
//! assert_eq!((before, after), (100, 110));
//! tm.shutdown();
//! ```
//!
//! See the `examples/` directory for larger scenarios (bank replay,
//! vacation booking, escaping-future shopping cart) and `wtf-bench` for
//! the paper's figure harnesses.

pub use wtf_core::{
    Aborted, AtomicitySemantics, BackendKind, BoxId, CostModel, FutState, FutureTm,
    OrderingSemantics, Semantics, Stm, StmError, TmConfig, TmStatsSnapshot, TxCtx, TxFuture,
    TxResult, TxValue, VBox,
};

/// The WTF-TM runtime (re-export of `wtf-core`).
pub mod tm {
    pub use wtf_core::*;
}

/// The multi-versioned STM substrate (re-export of `wtf-mvstm`).
pub mod stm {
    pub use wtf_mvstm::*;
}

/// The STM substrate abstraction: backend trait, stepwise transactions,
/// backend selection (re-export of `wtf-backend`).
pub mod backend {
    pub use wtf_backend::*;
}

/// The single-version, lock-striped TL2 substrate (re-export of
/// `wtf-tl2`).
pub mod tl2 {
    pub use wtf_tl2::*;
}

/// Correctness tooling: serializability checker, schedule explorers
/// (re-export of `wtf-check`).
pub mod check {
    pub use wtf_check::*;
}

/// The Future Serialization Graph formalism (re-export of `wtf-fsg`).
pub mod fsg {
    pub use wtf_fsg::*;
}

/// Virtual-time / real-time execution substrate (re-export of `wtf-vclock`).
pub mod clock {
    pub use wtf_vclock::*;
}

/// Clock-aware task pool (re-export of `wtf-taskpool`).
pub mod pool {
    pub use wtf_taskpool::*;
}

/// Observability: event tracing, histograms, abort attribution
/// (re-export of `wtf-trace`).
pub mod trace {
    pub use wtf_trace::*;
}

/// The paper's evaluation workloads (re-export of `wtf-workloads`).
pub mod workloads {
    pub use wtf_workloads::*;
}
