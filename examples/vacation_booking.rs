//! Travel-agency booking with parallel lookups (the Vacation workload).
//!
//! Run with: `cargo run --example vacation_booking`
//!
//! A `MakeReservation` scans flights, cars and rooms for the best
//! available items. The scan is split across transactional futures; some
//! lookups hit a slow remote database (injected delay), and WTF-TM's
//! out-of-order evaluation keeps the pipeline busy around them. The whole
//! reservation — scans plus booking — is one atomic transaction.

use transactional_futures::workloads::vacation::{
    vacation_futures, vacation_sequential, vacation_toplevel, VacationConfig,
};
use transactional_futures::Semantics;

fn main() {
    let cfg = VacationConfig {
        relations: 64,
        customers: 32,
        queries_per_tx: 48,
        chunks_per_tx: 12,
        futures_per_tx: 4,
        user_percent: 98,
        txs_per_client: 6,
        iter: 1_000,
        straggler_per_mille: 150,
        delay: 500_000, // a remote lookup costs ~500us of virtual time
        seed: 7,
    };

    println!(
        "booking sessions: {} queries per reservation, 12 chunks over 4 in-flight futures,",
        cfg.queries_per_tx
    );
    println!("15% of lookup chunks hit a remote database (+500us)");
    println!();

    let seq = vacation_sequential(&cfg);
    let jvstm = vacation_toplevel(&cfg, 4);
    let jtf = vacation_futures(&cfg, Semantics::SO, true, 2);
    let wtf = vacation_futures(&cfg, Semantics::WO_GAC, false, 2);

    println!("system                    threads   speedup   top-level abort rate");
    for (name, threads, r) in [
        ("sequential", 1, &seq),
        ("JVSTM (4 top-levels)", 4, &jvstm),
        ("JTF  (2 tops x 4 fut)", 8, &jtf),
        ("WTF  (2 tops x 4 fut)", 8, &wtf),
    ] {
        println!(
            "{name:<25} {threads:>7} {:>8.2}x {:>14.3}",
            r.speedup_vs(&seq),
            r.top_abort_rate()
        );
    }
    println!();
    println!(
        "WTF vs JTF: {:.2}x (out-of-order streaming around remote-lookup stragglers)",
        wtf.throughput() / jtf.throughput()
    );
}
