//! Quickstart: transactional futures in five minutes.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Shows the three core operations — `submit`, work in the continuation,
//! `evaluate` — and how the runtime picks a serialization point for each
//! future (at submission when possible, upon evaluation otherwise).

use transactional_futures::{FutureTm, Semantics};

fn main() {
    // WO+GAC is WTF-TM's native mode: futures may serialize at submission
    // or upon evaluation, and may escape their spawning transaction.
    let tm = FutureTm::new(Semantics::WO_GAC);

    let inventory = tm.new_vbox(100i64); // items in stock
    let sold = tm.new_vbox(0i64);

    // A transaction that sells items, computing the discount in parallel
    // with the rest of the bookkeeping.
    let receipt = tm
        .atomic(|ctx| {
            let stock = ctx.read(&inventory)?;
            let quantity = 3i64;

            // The discount computation runs as a transactional future: it
            // sees this transaction's state up to the submission point and
            // runs atomically with respect to the continuation below.
            let inv = inventory.clone();
            let discount = ctx.submit(move |c| {
                let stock_level = c.read(&inv)?;
                // Overstocked items get 20% off.
                Ok(if stock_level > 50 { 20 } else { 0 })
            })?;

            // Continuation: update the books while the future runs.
            ctx.write(&inventory, stock - quantity)?;
            let s = ctx.read(&sold)?;
            ctx.write(&sold, s + quantity)?;

            // Evaluation blocks until the future has committed (§3: at
            // most once; repeated evaluations return the same result).
            let pct = ctx.evaluate(&discount)?;
            let unit_price = 50;
            let total = quantity * unit_price * (100 - pct) / 100;
            Ok((quantity, pct, total))
        })
        .unwrap();

    println!(
        "sold {} items at {}% discount: total {}",
        receipt.0, receipt.1, receipt.2
    );
    println!("inventory now: {}", inventory.read_latest());
    println!("sold counter:  {}", sold.read_latest());

    let stats = tm.stats();
    println!(
        "futures: {} submitted, {} serialized at submission, {} at evaluation",
        stats.futures_submitted, stats.serialized_at_submission, stats.serialized_at_evaluation
    );
    tm.shutdown();

    assert_eq!(receipt, (3, 20, 120));
    assert_eq!(inventory.read_latest(), 97);
}
