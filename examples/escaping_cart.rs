//! Escaping futures: the paper's e-commerce scenario (§3.3).
//!
//! Run with: `cargo run --example escaping_cart`
//!
//! "Adding an item to the cart triggers a transaction that updates the
//! cart and, to hide user-perceived latency, spawns a future to check for
//! shipping costs using different sellers. This transaction commits before
//! showing the next page to the user, but the future it generated is only
//! evaluated at a later stage, when the purchase is finalized."
//!
//! Under **GAC** semantics the add-to-cart transaction commits without
//! waiting (low latency), the future *escapes*, and the checkout
//! transaction *adopts* it — re-executing it automatically if any shipping
//! cost changed in between, which gives exactly the paper's promised
//! atomicity of the whole purchase.

use transactional_futures::clock::Clock;
use transactional_futures::{FutureTm, Semantics, TxFuture, VBox};

#[derive(Clone)]
struct Cart {
    items: Vec<&'static str>,
    shipping_quote: Option<TxFuture<i64>>,
}

fn main() {
    // Run under the deterministic virtual clock so the quote is still in
    // flight when the add-to-cart transaction commits (that is the whole
    // point of the scenario: the future must *escape*). Under a real
    // clock a fast quote may legally serialize inside the first
    // transaction instead — also correct, but a different story.
    let clock = Clock::virtual_time();
    let total = clock.enter(run_shop);
    // The quote must reflect the *current* rates (12 vs 20 -> 12), not the
    // stale pre-update minimum (9).
    assert_eq!(total, 92);
}

fn run_shop() -> i64 {
    let tm = FutureTm::builder()
        .semantics(Semantics::WO_GAC)
        .workers(2)
        .build();

    // Seller shipping rates, updated concurrently by the sellers.
    let rate_a = tm.new_vbox(12i64);
    let rate_b = tm.new_vbox(9i64);
    let cart: VBox<Cart> = tm.new_vbox(Cart {
        items: Vec::new(),
        shipping_quote: None,
    });

    // --- Page 1: add to cart (commits immediately; quote runs async) ---
    tm.atomic(|ctx| {
        let mut c = ctx.read(&cart)?;
        c.items.push("keyboard");
        let (ra, rb) = (rate_a.clone(), rate_b.clone());
        // The shipping-cost check escapes this transaction: querying the
        // sellers takes a while (virtual milliseconds), so the page commit
        // below does not wait for it.
        let quote = ctx.submit(move |fx| {
            fx.work(2_000_000); // contacting sellers...
            let a = fx.read(&ra)?;
            let b = fx.read(&rb)?;
            Ok(a.min(b))
        })?;
        c.shipping_quote = Some(quote);
        ctx.write(&cart, c)?;
        Ok(())
    })
    .unwrap();
    println!("added to cart; page rendered without waiting for the quote");

    // --- Meanwhile: seller B raises its rate, invalidating the quote ---
    tm.atomic(|ctx| ctx.write(&rate_b, 20)).unwrap();
    println!("seller B raised its shipping rate to 20");

    // --- Page 2: checkout evaluates (adopts) the escaped future ---
    let total = tm
        .atomic(|ctx| {
            let c = ctx.read(&cart)?;
            let quote = c.shipping_quote.as_ref().expect("quote spawned");
            // If the rates the future saw are stale, the runtime
            // re-executes it here — the purchase stays atomic.
            let shipping = ctx.evaluate(quote)?;
            let goods: i64 = c.items.len() as i64 * 80;
            Ok(goods + shipping)
        })
        .unwrap();

    let stats = tm.stats();
    println!("checkout total: {total} (goods 80 + cheapest current shipping)");
    println!(
        "escaping futures adopted: {}, re-executed after staleness: {}",
        stats.adopted_escaping, stats.reexecutions
    );
    assert_eq!(
        stats.adopted_escaping, 1,
        "the quote escaped and was adopted"
    );
    tm.shutdown();
    total
}
