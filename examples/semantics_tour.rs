//! A tour of the four semantics on the paper's own example executions.
//!
//! Run with: `cargo run --example semantics_tour`
//!
//! Part 1 runs Figure 2's history on the live runtime under WO and SO and
//! shows the different outcomes (spared continuation vs doomed-and-
//! replayed continuation). Part 2 checks the same histories against the
//! *formal* semantics — the Future Serialization Graph — and prints the
//! acceptance matrix plus a GraphViz rendering of one FSG.

use transactional_futures::clock::Clock;
use transactional_futures::fsg::{build_fsg, paper, Semantics as FsgSemantics};
use transactional_futures::{FutureTm, Semantics};

fn run_fig2(semantics: Semantics) -> (i64, u64) {
    let clock = Clock::virtual_time();
    clock.enter(|| {
        let tm = FutureTm::builder().semantics(semantics).workers(2).build();
        let x = tm.new_vbox(0i64);
        let z = tm.new_vbox(0i64);
        let (x2, z2) = (x.clone(), z.clone());
        let seen = tm
            .atomic(move |ctx| {
                let (x3, z3) = (x2.clone(), z2.clone());
                // TF: r(x), w(z)
                let f = ctx.submit(move |c| {
                    c.work(100);
                    c.read(&x3)?;
                    c.write(&z3, 1)?;
                    Ok(())
                })?;
                // Continuation: r(z) (before TF commits), w(y)
                let seen = ctx.read(&z2)?;
                ctx.work(1_000);
                ctx.evaluate(&f)?;
                Ok(seen)
            })
            .unwrap();
        let aborts = tm.stats().internal_aborts;
        tm.shutdown();
        (seen, aborts)
    })
}

fn main() {
    println!("== Part 1: Figure 2 on the live runtime ==");
    println!("history: TF {{ r(x), w(z) }} races its continuation {{ r(z), w(y) }}\n");
    let (wo_seen, wo_aborts) = run_fig2(Semantics::WO_GAC);
    println!(
        "WO: continuation read z = {wo_seen} (the pre-future value), {wo_aborts} internal aborts"
    );
    println!("    -> the future was serialized upon evaluation; nobody aborted.");
    let (so_seen, so_aborts) = run_fig2(Semantics::SO);
    println!(
        "SO: continuation read z = {so_seen} (the future's value), {so_aborts} internal abort(s)"
    );
    println!("    -> the future won its submission point; the stale continuation re-ran.\n");
    assert_eq!((wo_seen, so_seen), (0, 1));
    assert_eq!(wo_aborts, 0);
    assert!(so_aborts >= 1);

    println!("== Part 2: the same histories under the formal semantics (FSG) ==\n");
    let histories: Vec<(&str, transactional_futures::fsg::History)> = vec![
        (
            "fig1a (TF at submission)",
            paper::fig1a_serialized_at_submission().0,
        ),
        (
            "fig1a (TF at evaluation)",
            paper::fig1a_serialized_at_evaluation().0,
        ),
        ("fig1a (torn increment)  ", paper::fig1a_torn().0),
        ("fig2  (spared abort)    ", paper::fig2().0),
        ("fig1c (escaping future) ", paper::fig1c().0),
        ("fig4  (overlapping conts)", paper::fig4_consistent().0),
    ];
    println!("history                      SO     WO+LAC  WO+GAC");
    for (name, h) in &histories {
        let so = build_fsg(h, FsgSemantics::SO).acceptable();
        let lac = build_fsg(h, FsgSemantics::WO_LAC).acceptable();
        let gac = build_fsg(h, FsgSemantics::WO_GAC).acceptable();
        println!("{name}  {so:<6} {lac:<7} {gac}");
    }

    println!("\n== Bonus: the FSG of Figure 2 (WO), as GraphViz DOT ==\n");
    let fsg = build_fsg(&paper::fig2().0, FsgSemantics::WO_GAC);
    println!("{}", fsg.to_dot());
}
