//! Bank log replay with straggler-avoiding futures (§5.3's Bank workload).
//!
//! Run with: `cargo run --example bank_replay`
//!
//! Replays a log of `transfer` and `getTotalAmount` operations, one future
//! per operation, under the deterministic virtual clock — and shows why
//! out-of-order evaluation wins: the long `getTotalAmount` scans straggle
//! the short transfers under in-order (JTF-style) evaluation.

use transactional_futures::workloads::bank::{
    futures_replay, sequential_replay, BankConfig, EvalPolicy,
};
use transactional_futures::Semantics;

fn main() {
    let cfg = BankConfig {
        accounts: 500,
        pairs_per_transfer: 10,
        update_percent: 60,
        iter: 1_000,
        chunk_size: 32,
        chunks_per_client: 2,
        concurrent_futures: 8,
        initial_balance: 1_000,
        seed: 42,
    };

    println!(
        "replaying {} operations ({}% transfers) over {} accounts, 8 futures in flight",
        cfg.chunk_size * cfg.chunks_per_client,
        cfg.update_percent,
        cfg.accounts
    );
    println!("(every getTotalAmount asserts the conservation invariant)");
    println!();

    let seq = sequential_replay(&cfg);
    let ooo = futures_replay(&cfg, Semantics::WO_GAC, EvalPolicy::OutOfOrder, 1);
    let ino = futures_replay(&cfg, Semantics::WO_GAC, EvalPolicy::InOrder, 1);
    let jtf = futures_replay(&cfg, Semantics::SO, EvalPolicy::InOrder, 1);

    println!("variant            virtual time   speedup   internal aborts");
    for (name, r) in [
        ("sequential", &seq),
        ("WTF out-of-order", &ooo),
        ("WTF in-order", &ino),
        ("JTF (SO)", &jtf),
    ] {
        println!(
            "{name:<18} {:>12} {:>8.2}x {:>12}",
            r.makespan,
            r.speedup_vs(&seq),
            r.tm.internal_aborts
        );
    }

    assert!(ooo.makespan <= ino.makespan);
    println!();
    println!(
        "out-of-order evaluation is {:.2}x faster than in-order on this log",
        ino.makespan as f64 / ooo.makespan as f64
    );
}
