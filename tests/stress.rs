//! Scale/stress integration: paper-scale thread counts under the virtual
//! clock, and real-thread races — swept across both STM substrates
//! (mvstm and TL2).

use std::sync::Arc;
use transactional_futures::clock::Clock;
use transactional_futures::workloads::bank::{futures_replay, BankConfig, EvalPolicy};
use transactional_futures::workloads::synthetic::{conflict_prone, ConflictConfig};
use transactional_futures::workloads::with_backend;
use transactional_futures::{BackendKind, FutureTm, Semantics};

/// 56 concurrent futures in one transaction — the paper's maximum degree
/// of intra-transaction parallelism.
#[test]
fn fifty_six_futures_one_transaction() {
    for kind in BackendKind::ALL {
        fifty_six_futures_on(kind);
    }
}

fn fifty_six_futures_on(kind: BackendKind) {
    let clock = Clock::virtual_time();
    let sum = clock.enter(|| {
        let tm = FutureTm::builder()
            .semantics(Semantics::WO_GAC)
            .workers(58)
            .backend_kind(kind)
            .build();
        let boxes: Vec<_> = (0..56).map(|i| tm.new_vbox(i as i64)).collect();
        let boxes2 = boxes.clone();
        let sum = tm
            .atomic(move |ctx| {
                let futs: Vec<_> = boxes2
                    .iter()
                    .enumerate()
                    .map(|(i, b)| {
                        let b2 = b.clone();
                        ctx.submit(move |c| {
                            c.work(100 + (i as u64 * 13) % 500);
                            let v = c.read(&b2)?;
                            c.write(&b2, v + 100)?;
                            Ok(v)
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let mut sum = 0i64;
                for f in &futs {
                    sum += ctx.evaluate(f)?;
                }
                Ok(sum)
            })
            .unwrap();
        tm.shutdown();
        assert!(boxes
            .iter()
            .enumerate()
            .all(|(i, b)| b.read_latest() == i as i64 + 100));
        sum
    });
    assert_eq!(sum, (0..56).sum::<i64>());
}

/// High-contention SO run completes (no livelock) and preserves counters —
/// exercising the replay-restart path hard.
#[test]
fn so_high_contention_progress() {
    let cfg = ConflictConfig {
        array_size: 256,
        reads_per_future: 50,
        iter: 200,
        hot_spots: 8,
        writes_per_future: 4,
        futures_per_tx: 8,
        txs_per_client: 4,
        seed: 0xfeed,
    };
    for kind in BackendKind::ALL {
        let r = with_backend(kind, || conflict_prone(&cfg, Semantics::SO, 2));
        assert_eq!(r.backend, kind);
        assert_eq!(
            r.tm.top_commits, 8,
            "{kind:?}: all transactions eventually commit"
        );
        assert!(r.tm.internal_aborts > 0, "{kind:?}: contention was real");
    }
}

/// Bank invariant under every variant at paper-ish scale.
#[test]
fn bank_invariant_at_scale() {
    let cfg = BankConfig {
        accounts: 2_000,
        pairs_per_transfer: 10,
        update_percent: 50,
        iter: 200,
        chunk_size: 40,
        chunks_per_client: 1,
        concurrent_futures: 14,
        initial_balance: 1_000,
        seed: 0xabcd,
    };
    // The workload itself asserts the getTotalAmount invariant.
    for kind in BackendKind::ALL {
        for (sem, pol) in [
            (Semantics::WO_GAC, EvalPolicy::OutOfOrder),
            (Semantics::SO, EvalPolicy::InOrder),
        ] {
            let r = with_backend(kind, || futures_replay(&cfg, sem, pol, 2));
            assert_eq!(r.tm.top_commits, 2, "{kind:?} {sem:?}");
        }
    }
}

/// Real OS threads (preemptive interleaving) hammering one TM with mixed
/// futures and plain transactions.
#[test]
fn real_thread_mixed_stress() {
    for kind in BackendKind::ALL {
        real_thread_mixed_stress_on(kind);
    }
}

fn real_thread_mixed_stress_on(kind: BackendKind) {
    let clock = Clock::real_nospin();
    clock.enter(|| {
        let tm = FutureTm::builder()
            .semantics(Semantics::WO_GAC)
            .workers(12)
            .backend_kind(kind)
            .build();
        let cells: Arc<Vec<_>> = Arc::new((0..8).map(|_| tm.new_vbox(0i64)).collect());
        let c = Clock::current();
        let hs: Vec<_> = (0..6)
            .map(|t| {
                let tm = tm.clone();
                let cells = cells.clone();
                c.spawn(&format!("s{t}"), move || {
                    for k in 0..40 {
                        let cells2 = cells.clone();
                        let i = (t * 7 + k) % 8;
                        let j = (t * 3 + k * 5) % 8;
                        if k % 3 == 0 {
                            // Plain transaction.
                            tm.atomic(move |ctx| {
                                let v = ctx.read(&cells2[i])?;
                                ctx.write(&cells2[i], v + 1)
                            })
                            .unwrap();
                        } else {
                            // Future-parallel transaction over two cells.
                            tm.atomic(move |ctx| {
                                let a = cells2[i].clone();
                                let f = ctx.submit(move |c| {
                                    let v = c.read(&a)?;
                                    c.write(&a, v + 1)?;
                                    Ok(())
                                })?;
                                if i != j {
                                    let v = ctx.read(&cells2[j])?;
                                    ctx.write(&cells2[j], v + 1)?;
                                }
                                ctx.evaluate(&f)?;
                                Ok(())
                            })
                            .unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        // Every transaction performed exactly 1 or 2 increments; totals
        // must match the deterministic op count.
        let mut expected = 0i64;
        for t in 0..6usize {
            for k in 0..40usize {
                let i = (t * 7 + k) % 8;
                let j = (t * 3 + k * 5) % 8;
                expected += if k % 3 == 0 {
                    1
                } else if i != j {
                    2
                } else {
                    1
                };
            }
        }
        let total: i64 = cells.iter().map(|c| c.read_latest()).sum();
        assert_eq!(total, expected);
        tm.shutdown();
    });
}

/// Determinism at scale: a 28-client virtual run is bit-reproducible —
/// on each substrate independently.
#[test]
fn virtual_determinism_at_scale() {
    for kind in BackendKind::ALL {
        let run = || {
            let cfg = ConflictConfig {
                array_size: 512,
                reads_per_future: 30,
                iter: 100,
                hot_spots: 16,
                writes_per_future: 2,
                futures_per_tx: 4,
                txs_per_client: 2,
                seed: 31337,
            };
            let r = with_backend(kind, || conflict_prone(&cfg, Semantics::WO_GAC, 4));
            (r.makespan, r.tm)
        };
        assert_eq!(run(), run(), "{kind:?}");
    }
}
