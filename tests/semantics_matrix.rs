//! Cross-crate integration: the four semantics on live executions,
//! checked against the formal FSG acceptance for the same patterns.

use transactional_futures::clock::Clock;
use transactional_futures::fsg;
use transactional_futures::{FutureTm, Semantics};

/// Fig. 2 as a live execution, all four semantics: WO variants spare the
/// continuation; SO dooms it. The formal FSG acceptance matrix must agree
/// with what the runtime did.
#[test]
fn fig2_live_matches_formal_semantics() {
    let run = |sem: Semantics| {
        let clock = Clock::virtual_time();
        clock.enter(|| {
            let tm = FutureTm::builder().semantics(sem).workers(2).build();
            let x = tm.new_vbox(0i64);
            let z = tm.new_vbox(0i64);
            let (x2, z2) = (x.clone(), z.clone());
            let seen = tm
                .atomic(move |ctx| {
                    let (x3, z3) = (x2.clone(), z2.clone());
                    let f = ctx.submit(move |c| {
                        c.work(100);
                        c.read(&x3)?;
                        c.write(&z3, 1)?;
                        Ok(())
                    })?;
                    let seen = ctx.read(&z2)?;
                    ctx.work(1_000);
                    ctx.evaluate(&f)?;
                    Ok(seen)
                })
                .unwrap();
            let stats = tm.stats();
            tm.shutdown();
            (seen, stats)
        })
    };

    for sem in [Semantics::WO_GAC, Semantics::WO_LAC] {
        let (seen, stats) = run(sem);
        assert_eq!(seen, 0, "{sem:?}: continuation kept its pre-future read");
        assert_eq!(stats.internal_aborts, 0, "{sem:?}: nobody aborted");
        assert_eq!(stats.serialized_at_evaluation, 1);
    }
    let (seen, stats) = run(Semantics::SO);
    assert_eq!(seen, 1, "SO: the doomed continuation re-ran");
    assert!(stats.internal_aborts >= 1);

    // The formal counterpart: the WO-shaped history (continuation read the
    // old value) is FSG-acceptable under WO only.
    let (h, _, _) = fsg::paper::fig2();
    assert!(fsg::build_fsg(&h, fsg::Semantics::WO_GAC).acceptable());
    assert!(fsg::build_fsg(&h, fsg::Semantics::WO_LAC).acceptable());
    assert!(!fsg::build_fsg(&h, fsg::Semantics::SO).acceptable());
}

/// LAC vs GAC on the same escaping-future program: LAC blocks the
/// spawner's commit (implicit evaluation); GAC lets it commit immediately
/// and the future is adopted later.
#[test]
fn lac_vs_gac_escaping_behavior() {
    let run = |sem: Semantics| {
        let clock = Clock::virtual_time();
        clock.enter(|| {
            let tm = FutureTm::builder().semantics(sem).workers(2).build();
            let x = tm.new_vbox(0i64);
            let x2 = x.clone();
            tm.atomic(move |ctx| {
                let x3 = x2.clone();
                let _f = ctx.submit(move |c| {
                    c.work(10_000);
                    c.write(&x3, 7)?;
                    Ok(())
                })?;
                Ok(())
            })
            .unwrap();
            let commit_time = Clock::current().now();
            let stats = tm.stats();
            tm.shutdown();
            (commit_time, stats, x.read_latest())
        })
    };
    let (t_lac, stats_lac, x_lac) = run(Semantics::WO_LAC);
    assert!(t_lac >= 10_000, "LAC: commit blocked on the stray future");
    assert_eq!(
        stats_lac.implicit_evaluations + stats_lac.serialized_at_submission,
        1
    );
    assert_eq!(
        x_lac, 7,
        "LAC: the future's effects committed with the spawner"
    );

    let (t_gac, _, x_gac) = run(Semantics::WO_GAC);
    assert!(t_gac < 10_000, "GAC: commit did not wait");
    assert_eq!(
        x_gac, 0,
        "GAC: an unevaluated escaping future never serializes"
    );
}

/// A chain of top-level transactions propagating an escaping future's
/// handle (the paper's generalization of Fig. 1c): the last transaction
/// in the chain evaluates and adopts it.
#[test]
fn escaping_future_through_transaction_chain() {
    use transactional_futures::TxFuture;
    let clock = Clock::virtual_time();
    let (v, stats) = clock.enter(|| {
        let tm = FutureTm::builder()
            .semantics(Semantics::WO_GAC)
            .workers(2)
            .build();
        let data = tm.new_vbox(21i64);
        let slot = tm.new_vbox::<Option<TxFuture<i64>>>(None);
        // T1 spawns and publishes.
        let (d2, s2) = (data.clone(), slot.clone());
        tm.atomic(move |ctx| {
            let d3 = d2.clone();
            let f = ctx.submit(move |c| {
                c.work(500);
                let v = c.read(&d3)?;
                Ok(v * 2)
            })?;
            ctx.write(&s2, Some(f))?;
            Ok(())
        })
        .unwrap();
        // T2..T4 pass the handle along (read + rewrite).
        for _ in 0..3 {
            let s3 = slot.clone();
            tm.atomic(move |ctx| {
                let f = ctx.read(&s3)?;
                ctx.write(&s3, f)?;
                Ok(())
            })
            .unwrap();
        }
        // T5 evaluates (adopts) it.
        let s4 = slot.clone();
        let v = tm
            .atomic(move |ctx| {
                let f = ctx.read(&s4)?.expect("handle propagated");
                ctx.evaluate(&f)
            })
            .unwrap();
        let stats = tm.stats();
        tm.shutdown();
        (v, stats)
    });
    assert_eq!(v, 42);
    assert_eq!(stats.adopted_escaping, 1);
    assert_eq!(stats.top_commits, 5);
}

/// SO == WO when futures never conflict: same results, same final state.
#[test]
fn semantics_agree_without_conflicts() {
    let run = |sem: Semantics| {
        let clock = Clock::virtual_time();
        clock.enter(|| {
            let tm = FutureTm::builder().semantics(sem).workers(8).build();
            let boxes: Vec<_> = (0..8).map(|i| tm.new_vbox(i as i64)).collect();
            let boxes2 = boxes.clone();
            let sum = tm
                .atomic(move |ctx| {
                    let futs: Vec<_> = boxes2
                        .iter()
                        .map(|b| {
                            let b2 = b.clone();
                            ctx.submit(move |c| {
                                let v = c.read(&b2)?;
                                c.write(&b2, v * 10)?;
                                Ok(v)
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    let mut sum = 0;
                    for f in &futs {
                        sum += ctx.evaluate(f)?;
                    }
                    Ok(sum)
                })
                .unwrap();
            let finals: Vec<i64> = boxes.iter().map(|b| b.read_latest()).collect();
            tm.shutdown();
            (sum, finals)
        })
    };
    let wo = run(Semantics::WO_GAC);
    let so = run(Semantics::SO);
    assert_eq!(wo, so);
    assert_eq!(wo.0, (0..8).sum::<i64>());
    assert_eq!(wo.1, (0..8).map(|i| i * 10).collect::<Vec<i64>>());
}
