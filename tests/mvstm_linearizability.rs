//! Linearizability stress for the striped mvstm commit path.
//!
//! Real threads hammer the STM with mixed update / read-only
//! transactions and check the two properties that die first when a
//! commit protocol is wrong:
//!
//! * **conservation** — concurrent bank transfers never create or
//!   destroy money, and *every* read-only audit (which commits with no
//!   validation at all) observes the conserved sum: an audit that saw a
//!   torn transfer would prove a snapshot exposed a half-installed
//!   commit;
//! * **zero lost updates** — N threads × M increments of one hot
//!   counter end at exactly N×M, so no commit ever overwrote another
//!   without one of them aborting and retrying.
//!
//! The first half drives mvstm's native API (and its mvstm-only
//! guarantees: wait-free read-only audits, version-chain GC); the second
//! half re-runs the same properties through the backend-generic stepwise
//! transaction on every [`BackendKind`] — under TL2 audits can conflict
//! and retry, but a *committed* audit must still see the conserved sum.

use std::sync::Arc;
use transactional_futures::backend::{atomic, BackendKind, StmBackend, TBox};
use transactional_futures::stm::{Stm, VBox};
use transactional_futures::tm::make_backend;
use transactional_futures::trace::{TraceLevel, Tracer};

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

/// Random transfers between `ACCOUNTS` accounts from `threads` threads,
/// with every 4th transaction a read-only full-sum audit.
fn run_bank(threads: usize, ops_per_thread: usize) {
    const ACCOUNTS: usize = 64;
    const INITIAL: i64 = 1_000;
    let stm = Stm::new();
    let accounts: Arc<Vec<VBox<i64>>> = Arc::new(
        (0..ACCOUNTS)
            .map(|_| VBox::new(&stm, INITIAL))
            .collect::<Vec<_>>(),
    );
    let expected_total = INITIAL * ACCOUNTS as i64;

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let stm = stm.clone();
            let accounts = accounts.clone();
            std::thread::spawn(move || {
                let mut seed = 0x9e37_79b9_7f4a_7c15u64 ^ (t as u64 + 1);
                for op in 0..ops_per_thread {
                    if op % 4 == 3 {
                        // Read-only audit: must see a consistent snapshot.
                        let total = stm
                            .atomic(|tx| {
                                let mut sum = 0i64;
                                for a in accounts.iter() {
                                    sum += tx.read(a)?;
                                }
                                Ok(sum)
                            })
                            .unwrap();
                        assert_eq!(total, expected_total, "audit saw a torn transfer");
                    } else {
                        let mut from = (xorshift(&mut seed) % ACCOUNTS as u64) as usize;
                        let mut to = (xorshift(&mut seed) % ACCOUNTS as u64) as usize;
                        if from == to {
                            to = (to + 1) % ACCOUNTS;
                            if from == to {
                                from = (from + 1) % ACCOUNTS;
                            }
                        }
                        let amount = (xorshift(&mut seed) % 100) as i64;
                        stm.atomic(|tx| {
                            let f = tx.read(&accounts[from])?;
                            let t = tx.read(&accounts[to])?;
                            tx.write(&accounts[from], f - amount)?;
                            tx.write(&accounts[to], t + amount)?;
                            Ok(())
                        })
                        .unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = stm
        .atomic(|tx| {
            let mut sum = 0i64;
            for a in accounts.iter() {
                sum += tx.read(a)?;
            }
            Ok(sum)
        })
        .unwrap();
    assert_eq!(total, expected_total);

    let stats = stm.stats();
    // Every loop iteration commits exactly one transaction (retries are
    // internal to `atomic`), plus the final audit above.
    assert_eq!(stats.commits, (threads * ops_per_thread) as u64 + 1);
    let audits = (threads * (ops_per_thread / 4)) as u64 + 1;
    assert_eq!(stats.read_only_commits, audits);
    // GC keeps every chain finite: pruning runs at commit time, so after
    // one more update commit per account (with no snapshots live) each
    // chain collapses to exactly its newest version.
    for a in accounts.iter() {
        stm.atomic(|tx| {
            let v = tx.read(a)?;
            tx.write(a, v)
        })
        .unwrap();
        assert_eq!(a.version_chain_len(), 1);
    }
}

#[test]
fn bank_conserves_sum_2_threads() {
    run_bank(2, 1500);
}

#[test]
fn bank_conserves_sum_4_threads() {
    run_bank(4, 1500);
}

#[test]
fn bank_conserves_sum_8_threads() {
    run_bank(8, 1500);
}

/// All threads increment one hot box (worst case for the striped commit
/// path: every commit collides on the same stripe) plus a private box.
/// Any lost update shows up as a shortfall in the final counts.
#[test]
fn no_lost_updates_on_hot_counter() {
    const THREADS: usize = 8;
    const INCREMENTS: usize = 1_000;
    let stm = Stm::new();
    let shared = VBox::new(&stm, 0i64);
    let privates: Arc<Vec<VBox<i64>>> = Arc::new(
        (0..THREADS)
            .map(|_| VBox::new(&stm, 0i64))
            .collect::<Vec<_>>(),
    );

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let stm = stm.clone();
            let shared = shared.clone();
            let privates = privates.clone();
            std::thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    stm.atomic(|tx| {
                        let s = tx.read(&shared)?;
                        tx.write(&shared, s + 1)?;
                        let p = tx.read(&privates[t])?;
                        tx.write(&privates[t], p + 1)?;
                        Ok(())
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(shared.read_latest(), (THREADS * INCREMENTS) as i64);
    for p in privates.iter() {
        assert_eq!(p.read_latest(), INCREMENTS as i64);
    }
    assert_eq!(stm.stats().commits, (THREADS * INCREMENTS) as u64);
}

/// Backend-generic bank: the same conservation property driven through
/// [`atomic`]/[`BackendTxn`](transactional_futures::backend::BackendTxn)
/// on an arbitrary substrate. Audits may conflict and retry on TL2
/// (single-version reads fail when a box moves past the snapshot), so
/// only committed audits are asserted — and every one of them must see
/// the conserved sum.
fn run_bank_on(kind: BackendKind, threads: usize, ops_per_thread: usize) {
    const ACCOUNTS: usize = 64;
    const INITIAL: i64 = 1_000;
    let tracer = Tracer::with_capacity(TraceLevel::Off, 0);
    let backend: Arc<dyn StmBackend> = make_backend(kind, tracer);
    let accounts: Arc<Vec<TBox<i64>>> = Arc::new(
        (0..ACCOUNTS)
            .map(|_| TBox::new_on(&*backend, INITIAL))
            .collect::<Vec<_>>(),
    );
    let expected_total = INITIAL * ACCOUNTS as i64;

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let backend = backend.clone();
            let accounts = accounts.clone();
            std::thread::spawn(move || {
                let mut seed = 0x9e37_79b9_7f4a_7c15u64 ^ (t as u64 + 1);
                for op in 0..ops_per_thread {
                    if op % 4 == 3 {
                        let total = atomic(&*backend, |tx| {
                            let mut sum = 0i64;
                            for a in accounts.iter() {
                                sum += tx.read(a)?;
                            }
                            Ok(sum)
                        })
                        .unwrap();
                        assert_eq!(total, expected_total, "{kind:?}: audit saw a torn transfer");
                    } else {
                        let mut from = (xorshift(&mut seed) % ACCOUNTS as u64) as usize;
                        let mut to = (xorshift(&mut seed) % ACCOUNTS as u64) as usize;
                        if from == to {
                            to = (to + 1) % ACCOUNTS;
                            if from == to {
                                from = (from + 1) % ACCOUNTS;
                            }
                        }
                        let amount = (xorshift(&mut seed) % 100) as i64;
                        atomic(&*backend, |tx| {
                            let f = tx.read(&accounts[from])?;
                            let t = tx.read(&accounts[to])?;
                            tx.write(&accounts[from], f - amount)?;
                            tx.write(&accounts[to], t + amount)?;
                            Ok(())
                        })
                        .unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = atomic(&*backend, |tx| {
        let mut sum = 0i64;
        for a in accounts.iter() {
            sum += tx.read(a)?;
        }
        Ok(sum)
    })
    .unwrap();
    assert_eq!(total, expected_total, "{kind:?}");

    let stats = backend.stats();
    // Every loop iteration commits exactly one transaction (conflicted
    // attempts retry inside `atomic`), plus the final audit above.
    assert_eq!(
        stats.commits,
        (threads * ops_per_thread) as u64 + 1,
        "{kind:?}"
    );
    let audits = (threads * (ops_per_thread / 4)) as u64 + 1;
    assert_eq!(stats.read_only_commits, audits, "{kind:?}");
}

#[test]
fn backends_conserve_sum_4_threads() {
    for kind in BackendKind::ALL {
        run_bank_on(kind, 4, 1000);
    }
}

/// Backend-generic hot counter: any lost update on either substrate
/// shows up as a shortfall in the final counts.
#[test]
fn backends_lose_no_updates_on_hot_counter() {
    const THREADS: usize = 8;
    const INCREMENTS: usize = 500;
    for kind in BackendKind::ALL {
        let tracer = Tracer::with_capacity(TraceLevel::Off, 0);
        let backend: Arc<dyn StmBackend> = make_backend(kind, tracer);
        let shared = TBox::new_on(&*backend, 0i64);
        let privates: Arc<Vec<TBox<i64>>> = Arc::new(
            (0..THREADS)
                .map(|_| TBox::new_on(&*backend, 0i64))
                .collect::<Vec<_>>(),
        );

        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let backend = backend.clone();
                let shared = shared.clone();
                let privates = privates.clone();
                std::thread::spawn(move || {
                    for _ in 0..INCREMENTS {
                        atomic(&*backend, |tx| {
                            let s = tx.read(&shared)?;
                            tx.write(&shared, s + 1)?;
                            let p = tx.read(&privates[t])?;
                            tx.write(&privates[t], p + 1)?;
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        assert_eq!(
            shared.read_latest(),
            (THREADS * INCREMENTS) as i64,
            "{kind:?}"
        );
        for p in privates.iter() {
            assert_eq!(p.read_latest(), INCREMENTS as i64, "{kind:?}");
        }
        assert_eq!(
            backend.stats().commits,
            (THREADS * INCREMENTS) as u64,
            "{kind:?}"
        );
    }
}
