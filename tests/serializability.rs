//! Serializability soundness: random future-parallel programs must
//! produce a final state explainable by SOME serial order of their
//! commutative structure — checked by enumerating serial outcomes.

use std::sync::Arc;
use transactional_futures::clock::Clock;
use transactional_futures::{FutureTm, Semantics};

/// A tiny program: each of `k` futures applies an affine update
/// `x -> a*x + b` to one shared box (read-modify-write). Affine updates
/// do NOT commute, so the final value identifies the serialization order.
/// The committed result must equal the composition of the updates in some
/// permutation — and every future's return value (the value it observed)
/// must be consistent with that same permutation.
fn run_affine(sem: Semantics, coeffs: &[(i64, i64)], seed: u64) -> (i64, Vec<i64>) {
    let coeffs = coeffs.to_vec();
    let clock = Clock::virtual_time();
    clock.enter(move || {
        let tm = FutureTm::builder()
            .semantics(sem)
            .workers(coeffs.len() + 2)
            .build();
        let x = tm.new_vbox(1i64);
        let x2 = x.clone();
        let coeffs2 = coeffs.clone();
        let observed = tm
            .atomic(move |ctx| {
                let mut futs = Vec::new();
                for (i, &(a, b)) in coeffs2.iter().enumerate() {
                    let x3 = x2.clone();
                    // Deterministic per-future jitter staggers completions.
                    let delay = (seed.wrapping_mul(i as u64 + 1) % 7) * 130;
                    futs.push(ctx.submit(move |c| {
                        c.work(delay);
                        let v = c.read(&x3)?;
                        c.write(&x3, a * v + b)?;
                        Ok(v)
                    })?);
                }
                let mut seen = Vec::new();
                for f in &futs {
                    seen.push(ctx.evaluate(f)?);
                }
                Ok(seen)
            })
            .unwrap();
        let final_v = x.read_latest();
        tm.shutdown();
        (final_v, observed)
    })
}

/// All permutations of 0..n (n <= 4 here).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    for sub in permutations(n - 1) {
        for pos in 0..=sub.len() {
            let mut p: Vec<usize> = sub.to_vec();
            p.insert(pos, n - 1);
            out.push(p);
        }
    }
    out
}

/// Checks that `(final, observed)` matches some serial permutation of the
/// affine updates applied to initial value 1.
fn explained_by_serial_order(coeffs: &[(i64, i64)], final_v: i64, observed: &[i64]) -> bool {
    for perm in permutations(coeffs.len()) {
        let mut v = 1i64;
        let mut obs = vec![0i64; coeffs.len()];
        for &i in &perm {
            obs[i] = v;
            let (a, b) = coeffs[i];
            v = a * v + b;
        }
        if v == final_v && obs == observed {
            return true;
        }
    }
    false
}

#[test]
fn affine_updates_serializable_under_all_semantics() {
    let coeff_sets: Vec<Vec<(i64, i64)>> = vec![
        vec![(2, 1), (3, 0)],
        vec![(2, 1), (3, 0), (1, 5)],
        vec![(5, 2), (2, 3), (3, 1), (1, 7)],
    ];
    for sem in [Semantics::WO_GAC, Semantics::WO_LAC, Semantics::SO] {
        for coeffs in &coeff_sets {
            for seed in 0..6 {
                let (final_v, observed) = run_affine(sem, coeffs, seed);
                assert!(
                    explained_by_serial_order(coeffs, final_v, &observed),
                    "{sem:?} seed={seed} coeffs={coeffs:?}: final={final_v} observed={observed:?} \
                     not explainable by any serial order"
                );
            }
        }
    }
}

/// Cross-top-level serializability: concurrent clients applying affine
/// updates through futures; the final value must equal the composition in
/// some global order (any order — affine closure is checked by re-running
/// all permutations of per-client compositions is too big, so use a
/// conservation-style invariant instead: multiplications by 1 only, so
/// order does not matter and the sum of additions is exact).
#[test]
fn cross_top_additions_exact() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 10;
    let clock = Clock::virtual_time();
    let total = clock.enter(|| {
        let tm = FutureTm::builder()
            .semantics(Semantics::WO_GAC)
            .workers(CLIENTS * 2 + 2)
            .build();
        let x = Arc::new(tm.new_vbox(0i64));
        let c = Clock::current();
        let hs: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let tm = tm.clone();
                let x = x.clone();
                c.spawn(&format!("cl{i}"), move || {
                    for k in 0..PER_CLIENT {
                        let x2 = (*x).clone();
                        tm.atomic(move |ctx| {
                            let x3 = x2.clone();
                            let f = ctx.submit(move |c| {
                                c.work((k as u64 % 3) * 50);
                                let v = c.read(&x3)?;
                                Ok(v)
                            })?;
                            let v = ctx.evaluate(&f)?;
                            ctx.write(&x2, v + 1)?;
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        let v = x.read_latest();
        tm.shutdown();
        v
    });
    assert_eq!(total, (CLIENTS * PER_CLIENT) as i64);
}
