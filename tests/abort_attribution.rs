//! Abort attribution under contention: when 8 threads hammer one hot
//! box (while also touching private cold boxes), the tracer's hotspot
//! report must charge the hot box with essentially all conflict aborts
//! — that report is what the watchdog and the abort-storm dumps point
//! operators at, so it has to name the right box.
//!
//! Swept across both substrates: mvstm charges the box whose version
//! chain outran the snapshot at commit validation; TL2 additionally
//! charges boxes at failed *reads* (its stripe-guarded slots are
//! single-version, so a box overwritten past the snapshot conflicts the
//! moment it is read). Either way the contended box must dominate.

use std::sync::Arc;
use transactional_futures::clock::Clock;
use transactional_futures::trace::{TraceLevel, Tracer};
use transactional_futures::{BackendKind, FutureTm, Semantics};

#[test]
fn hot_box_dominates_hotspot_report() {
    for kind in BackendKind::ALL {
        hot_box_dominates_on(kind);
    }
}

fn hot_box_dominates_on(kind: BackendKind) {
    const CLIENTS: usize = 8;
    const TXS: usize = 40;
    let clock = Clock::virtual_time();
    let tracer = Tracer::new(TraceLevel::Full);
    let t2 = Arc::clone(&tracer);
    clock.enter(move || {
        let tm = FutureTm::builder()
            .semantics(Semantics::WO_GAC)
            .workers(CLIENTS + 2)
            .backend_kind(kind)
            .tracer(t2)
            .build();
        let hot = tm.new_vbox(0i64);
        let colds: Vec<_> = (0..CLIENTS).map(|i| tm.new_vbox(i as i64)).collect();
        let c = Clock::current();
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let tm = tm.clone();
                let hot = hot.clone();
                let cold = colds[i].clone();
                c.spawn(&format!("client-{i}"), move || {
                    for _ in 0..TXS {
                        let hot = hot.clone();
                        let cold = cold.clone();
                        tm.atomic(move |ctx| {
                            // Read-modify-write on the shared box, with
                            // enough work in the window to force overlap.
                            let v = ctx.read(&hot)?;
                            ctx.work(200);
                            let cv = ctx.read(&cold)?;
                            ctx.write(&cold, cv + 1)?;
                            ctx.write(&hot, v + 1)
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(hot.read_latest(), (CLIENTS * TXS) as i64);
        let summary = tm.tracer().summary();
        assert!(
            summary.conflict_total > 0,
            "{kind:?}: contended run must conflict"
        );
        let hot_id = hot.id().0;
        let charged = summary
            .hotspots
            .iter()
            .find(|&&(id, _)| id == hot_id)
            .map(|&(_, n)| n)
            .unwrap_or(0);
        assert!(
            charged as f64 >= 0.90 * summary.conflict_total as f64,
            "{kind:?}: hot box {hot_id} charged only {charged}/{} conflicts: {:?}",
            summary.conflict_total,
            summary.hotspots
        );
        // The hotspot report is sorted by charge: the hot box leads it.
        assert_eq!(summary.hotspots.first().map(|&(id, _)| id), Some(hot_id));
        tm.shutdown();
    });
}
