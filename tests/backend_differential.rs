//! Differential testing of the STM substrates: the same seeded workloads
//! run under the deterministic virtual clock on every [`BackendKind`]
//! must (a) reach identical final states — the scenarios' updates are
//! additive, so the final state is independent of commit order — and
//! (b) produce histories the offline serializability checker accepts,
//! with zero dropped trace events.

use std::sync::Arc;
use transactional_futures::check::HistoryChecker;
use transactional_futures::clock::Clock;
use transactional_futures::trace::{TraceLevel, Tracer};
use transactional_futures::{BackendKind, FutureTm, Semantics, VBox};

/// Tiny deterministic PRNG (xorshift64*), seeded per client.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Runs `scenario` on a fresh TM over `kind` under a fresh virtual
/// clock, then verifies the full trace with the serializability checker
/// and returns the scenario's final state for cross-backend comparison.
fn checked_run(
    kind: BackendKind,
    workers: usize,
    scenario: impl FnOnce(&FutureTm) -> Vec<i64>,
) -> Vec<i64> {
    let clock = Clock::virtual_time();
    let tracer = Tracer::with_capacity(TraceLevel::Full, 1 << 18);
    let state = clock.enter(|| {
        let tm = FutureTm::builder()
            .semantics(Semantics::WO_GAC)
            .workers(workers)
            .backend_kind(kind)
            .tracer(tracer.clone())
            .build();
        assert_eq!(tm.backend_kind(), kind);
        let state = scenario(&tm);
        tm.shutdown();
        state
    });
    let summary = tracer.summary();
    assert_eq!(summary.events_dropped, 0, "{kind:?}: dropped trace events");
    let report = HistoryChecker::from_tracer(&tracer)
        .verify()
        .unwrap_or_else(|e| panic!("{kind:?}: checker rejected history: {e:?}"));
    assert!(report.events > 0, "{kind:?}: checker consumed no events");
    state
}

/// Runs the scenario on every backend and asserts the final states are
/// bit-identical across substrates.
fn differential(workers: usize, scenario: impl Fn(&FutureTm) -> Vec<i64>) -> Vec<i64> {
    let mut reference: Option<(BackendKind, Vec<i64>)> = None;
    for kind in BackendKind::ALL {
        let state = checked_run(kind, workers, &scenario);
        match &reference {
            None => reference = Some((kind, state)),
            Some((ref_kind, ref_state)) => {
                assert_eq!(
                    &state, ref_state,
                    "final state diverged: {kind:?} vs {ref_kind:?}"
                );
            }
        }
    }
    reference.expect("BackendKind::ALL is non-empty").1
}

/// Hot counter: every client hammers one box with read-modify-write
/// increments through a transactional future. Lost updates on either
/// substrate would show up as a short count.
#[test]
fn hot_counter_agrees_across_backends() {
    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 40;
    let state = differential(CLIENTS * 2 + 2, |tm| {
        let counter = Arc::new(tm.new_vbox(0i64));
        let c = Clock::current();
        let hs: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let tm = tm.clone();
                let counter = counter.clone();
                c.spawn(&format!("cl{i}"), move || {
                    for k in 0..PER_CLIENT {
                        let x = (*counter).clone();
                        tm.atomic_infallible(move |ctx| {
                            let x2 = x.clone();
                            let f = ctx.submit(move |c| {
                                c.work((k as u64 % 3) * 70);
                                c.read(&x2)
                            })?;
                            let v = ctx.evaluate(&f)?;
                            ctx.write(&x, v + 1)
                        });
                    }
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        vec![counter.read_latest()]
    });
    assert_eq!(state, vec![(CLIENTS * PER_CLIENT) as i64]);
}

/// Bank: seeded transfers between accounts, debit in a future and credit
/// in the continuation. Amounts are fixed by the seed (not read-
/// dependent), so the final balances are order-independent and must
/// match exactly across backends; the total is conserved throughout.
#[test]
fn bank_transfers_agree_across_backends() {
    const ACCOUNTS: usize = 8;
    const CLIENTS: usize = 4;
    const TRANSFERS: usize = 30;
    const INITIAL: i64 = 1_000;
    let state = differential(CLIENTS * 2 + 2, |tm| {
        let accounts: Arc<Vec<VBox<i64>>> =
            Arc::new((0..ACCOUNTS).map(|_| tm.new_vbox(INITIAL)).collect());
        let c = Clock::current();
        let hs: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let tm = tm.clone();
                let accounts = accounts.clone();
                c.spawn(&format!("teller{i}"), move || {
                    let mut rng = Rng::new(0xB4A9 + i as u64);
                    for _ in 0..TRANSFERS {
                        let from = (rng.next() % ACCOUNTS as u64) as usize;
                        let to = (rng.next() % ACCOUNTS as u64) as usize;
                        let amount = (rng.next() % 50) as i64 + 1;
                        let src = accounts[from].clone();
                        let dst = accounts[to].clone();
                        tm.atomic_infallible(move |ctx| {
                            let src2 = src.clone();
                            let debit = ctx.submit(move |c| {
                                let v = c.read(&src2)?;
                                c.write(&src2, v - amount)
                            })?;
                            let v = ctx.read(&dst)?;
                            ctx.write(&dst, v + amount)?;
                            ctx.evaluate(&debit)
                        });
                    }
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        accounts.iter().map(|a| a.read_latest()).collect()
    });
    assert_eq!(state.iter().sum::<i64>(), ACCOUNTS as i64 * INITIAL);
}

/// Mini-vacation: each booking reserves one flight, one car and one room
/// (three tables of capacity counters), each table decrement running as
/// its own transactional future inside one atomic booking. Capacities
/// are sized so no booking ever fails, making the final counts a pure
/// (order-independent) sum.
#[test]
fn vacation_bookings_agree_across_backends() {
    const PER_TABLE: usize = 5;
    const CLIENTS: usize = 4;
    const BOOKINGS: usize = 25;
    const CAPACITY: i64 = (CLIENTS * BOOKINGS) as i64; // never sells out
    let state = differential(CLIENTS * 3 + 2, |tm| {
        let tables: Arc<Vec<Vec<VBox<i64>>>> = Arc::new(
            (0..3)
                .map(|_| (0..PER_TABLE).map(|_| tm.new_vbox(CAPACITY)).collect())
                .collect(),
        );
        let c = Clock::current();
        let hs: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let tm = tm.clone();
                let tables = tables.clone();
                c.spawn(&format!("agent{i}"), move || {
                    let mut rng = Rng::new(0x7E15 + i as u64);
                    for _ in 0..BOOKINGS {
                        let picks: Vec<VBox<i64>> = (0..3)
                            .map(|t| tables[t][(rng.next() % PER_TABLE as u64) as usize].clone())
                            .collect();
                        tm.atomic_infallible(move |ctx| {
                            let futs = picks
                                .iter()
                                .map(|item| {
                                    let item = item.clone();
                                    ctx.submit(move |c| {
                                        let left = c.read(&item)?;
                                        c.write(&item, left - 1)
                                    })
                                })
                                .collect::<Result<Vec<_>, _>>()?;
                            for f in &futs {
                                ctx.evaluate(f)?;
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        tables
            .iter()
            .flat_map(|t| t.iter().map(|b| b.read_latest()))
            .collect()
    });
    // Every seat sold is accounted for: 3 decrements per booking.
    let sold: i64 = state.iter().map(|&left| CAPACITY - left).sum();
    assert_eq!(sold, (3 * CLIENTS * BOOKINGS) as i64);
}
